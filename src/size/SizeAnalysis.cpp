//===- size/SizeAnalysis.cpp ----------------------------------------------===//

#include "size/SizeAnalysis.h"

#include "support/Tracer.h"

#include <algorithm>

using namespace granlog;

namespace granlog {

/// Walks one clause, maintaining a variable -> (measure -> size expression)
/// environment.  This realizes the paper's normalization: inter-literal
/// size relations are propagated by construction (each consumed size is
/// expressed via its producer), and intra-literal relations are unfolded
/// by substituting callee output-size functions.
class ClauseSizeWalker {
public:
  ClauseSizeWalker(const SizeAnalysis &SA, Functor Pred, bool KeepSCCCalls,
                   bool Lower = false)
      : SA(SA), P(SA.program()), Symbols(P.symbols()), Pred(Pred),
        KeepSCCCalls(KeepSCCCalls), Lower(Lower) {}

  ClauseFacts walk(const Clause &C);

private:
  using VarSizes = std::map<MeasureKind, ExprRef>;

  ExprRef sizeOf(const Term *T, MeasureKind M);
  void bindVar(const VarTerm *V, MeasureKind M, ExprRef S);
  void bindPattern(const Term *T, MeasureKind M, ExprRef S);
  ExprRef evalArith(const Term *T);
  void processBuiltin(Functor F, const StructTerm *S);
  void processUserCall(Functor F, const StructTerm *S, LiteralFacts &Facts);

  const SizeAnalysis &SA;
  const Program &P;
  const SymbolTable &Symbols;
  Functor Pred;
  bool KeepSCCCalls;
  /// Lower-bound direction: the environment holds *lower* bounds and
  /// Infinity means "unknown" (no lower bound), so every propagation rule
  /// must be monotone in its operands or restricted to exact (ground)
  /// quantities.  Construction rules (cons, struct sizes) are exact and
  /// shared; destructuring and arithmetic differ below.
  bool Lower;
  std::map<const VarTerm *, VarSizes> Env;
};

} // namespace granlog

void ClauseSizeWalker::bindVar(const VarTerm *V, MeasureKind M, ExprRef S) {
  VarSizes &Sizes = Env[V];
  // First binding wins: it corresponds to the producer under the
  // left-to-right dataflow; later bindings would be re-derivations.
  Sizes.emplace(M, std::move(S));
}

void ClauseSizeWalker::bindPattern(const Term *T, MeasureKind M, ExprRef S) {
  // Void positions are untracked by design: recording a size for them
  // would make e.g. permuted void arguments look like changing sizes and
  // defeat recurrence extraction.
  if (M == MeasureKind::Void)
    return;
  T = deref(T);
  if (const VarTerm *V = dynCast<VarTerm>(T)) {
    bindVar(V, M, std::move(S));
    return;
  }
  const StructTerm *St = dynCast<StructTerm>(T);
  if (!St)
    return;
  switch (M) {
  case MeasureKind::ListLength:
    if (isCons(St, Symbols))
      bindPattern(St->arg(1), M, makeSub(S, makeNumber(1)));
    return;
  case MeasureKind::TermSize: {
    if (Lower) {
      // Lower direction: sibling sizes are unbounded above, so only a
      // single-argument structure destructures exactly (arg = S - 1).
      if (St->arity() == 1)
        bindPattern(St->arg(0), M, makeSub(S, makeNumber(1)));
      return;
    }
    // Each argument's size is at most S minus the functor symbol and the
    // minimal size (1) of each sibling.
    ExprRef Bound =
        makeSub(S, makeNumber(static_cast<int64_t>(St->arity())));
    for (const Term *Arg : St->args())
      bindPattern(Arg, M, Bound);
    return;
  }
  case MeasureKind::TermDepth: {
    if (Lower) {
      // Only a single child is forced to realize depth S - 1; with
      // several children any one of them may be shallow.
      if (St->arity() == 1)
        bindPattern(St->arg(0), M, makeSub(S, makeNumber(1)));
      return;
    }
    ExprRef Bound = makeSub(S, makeNumber(1));
    for (const Term *Arg : St->args())
      bindPattern(Arg, M, Bound);
    return;
  }
  case MeasureKind::IntValue:
  case MeasureKind::Void:
    return;
  }
}

ExprRef ClauseSizeWalker::sizeOf(const Term *T, MeasureKind M) {
  if (M == MeasureKind::Void)
    return makeInfinity();
  T = deref(T);
  if (const VarTerm *V = dynCast<VarTerm>(T)) {
    auto It = Env.find(V);
    if (It != Env.end()) {
      auto MIt = It->second.find(M);
      if (MIt != It->second.end())
        return MIt->second;
    }
    return makeInfinity();
  }
  if (T->isGround()) {
    std::optional<int64_t> S = groundSize(T, M, Symbols);
    return S ? makeNumber(*S) : makeInfinity();
  }
  switch (M) {
  case MeasureKind::ListLength: {
    if (isCons(T, Symbols))
      return makeAdd(makeNumber(1),
                     sizeOf(cast<StructTerm>(T)->arg(1), M));
    return makeInfinity();
  }
  case MeasureKind::TermSize: {
    const StructTerm *St = dynCast<StructTerm>(T);
    if (!St)
      return makeNumber(1);
    std::vector<ExprRef> Parts{makeNumber(1)};
    for (const Term *Arg : St->args())
      Parts.push_back(sizeOf(Arg, M));
    return makeAdd(std::move(Parts));
  }
  case MeasureKind::TermDepth: {
    const StructTerm *St = dynCast<StructTerm>(T);
    if (!St)
      return makeNumber(0);
    std::vector<ExprRef> Parts;
    for (const Term *Arg : St->args())
      Parts.push_back(sizeOf(Arg, M));
    return makeAdd(makeNumber(1), makeMax(std::move(Parts)));
  }
  case MeasureKind::IntValue:
    if (const IntTerm *I = dynCast<IntTerm>(T))
      return makeNumber(I->value());
    return evalArith(T);
  case MeasureKind::Void:
    return makeInfinity();
  }
  return makeInfinity();
}

ExprRef ClauseSizeWalker::evalArith(const Term *T) {
  T = deref(T);
  if (const IntTerm *I = dynCast<IntTerm>(T))
    return makeNumber(I->value());
  if (const VarTerm *V = dynCast<VarTerm>(T)) {
    auto It = Env.find(V);
    if (It != Env.end()) {
      auto MIt = It->second.find(MeasureKind::IntValue);
      if (MIt != It->second.end())
        return MIt->second;
    }
    return makeInfinity();
  }
  const StructTerm *S = dynCast<StructTerm>(T);
  if (!S)
    return makeInfinity();
  const std::string &Name = Symbols.text(S->name());
  if (S->arity() == 1) {
    ExprRef A = evalArith(S->arg(0));
    if (Name == "-") {
      // Negation flips the bound direction: sound in the lower walk only
      // over an exact (ground) operand.
      if (Lower && !deref(S->arg(0))->isGround())
        return makeInfinity();
      return makeScale(Rational(-1), A);
    }
    if (Name == "abs")
      // |x| >= 0 always; the upper walk keeps its historical pass-through.
      return Lower ? makeNumber(0) : A;
    if (Name == "+")
      return A;
    return makeInfinity();
  }
  if (S->arity() != 2)
    return makeInfinity();
  ExprRef A = evalArith(S->arg(0));
  ExprRef B = evalArith(S->arg(1));
  if (Lower) {
    // The environment holds lower bounds, so every combination must be
    // monotone in its operands or involve only exact ground quantities.
    bool AGround = deref(S->arg(0))->isGround();
    bool BGround = deref(S->arg(1))->isGround();
    if (Name == "+")
      return makeAdd(A, B);
    if (Name == "-")
      // Needs an *upper* bound on the subtrahend; only an exact ground
      // constant provides one.
      return BGround && B->isNumber() ? makeSub(A, B) : makeInfinity();
    if (Name == "*") {
      // Monotone only when scaling by a known non-negative constant.
      if (BGround && B->isNumber() && !B->number().isNegative())
        return makeMul(A, B);
      if (AGround && A->isNumber() && !A->number().isNegative())
        return makeMul(A, B);
      return makeInfinity();
    }
    if (Name == "//" || Name == "/") {
      // Integer division truncates: x / k >= x/k - 1 for ground k > 0.
      if (BGround && B->isNumber() && B->number() > Rational(0))
        return makeSub(makeScale(Rational(1) / B->number(), A),
                       makeNumber(1));
      return makeInfinity();
    }
    if (Name == "mod")
      // x mod k >= 0 for k > 0 (result sign follows the divisor).
      return BGround && B->isNumber() && B->number() > Rational(0)
                 ? makeNumber(0)
                 : makeInfinity();
    if (Name == "min")
      // makeMin would drop an Infinity operand, but here Infinity means
      // "unknown" and must poison the whole min.
      return A->isInfinity() || B->isInfinity() ? makeInfinity()
                                                : makeMin({A, B});
    if (Name == "max") {
      // max is monotone in both operands, and max(a, b) >= b alone when
      // a has no known floor.
      if (A->isInfinity())
        return B;
      if (B->isInfinity())
        return A;
      return makeMax(A, B);
    }
    return makeInfinity();
  }
  if (Name == "+")
    return makeAdd(A, B);
  if (Name == "-")
    return makeSub(A, B);
  if (Name == "*")
    return makeMul(A, B);
  if (Name == "//" || Name == "/") {
    // Division by a constant only; x / k <= x * (1/k) for k >= 1.
    if (B->isNumber() && !B->number().isZero())
      return makeScale(Rational(1) / B->number(), A);
    return makeInfinity();
  }
  if (Name == "mod") {
    // 0 <= x mod k < k for k > 0.
    if (B->isNumber())
      return makeNumber(B->number() - Rational(1));
    return makeInfinity();
  }
  if (Name == "min")
    return makeMin({A, B});
  if (Name == "max")
    return makeMax(A, B);
  return makeInfinity();
}

void ClauseSizeWalker::processBuiltin(Functor F, const StructTerm *S) {
  const std::string &Name = Symbols.text(F.Name);
  if (!S)
    return;
  if (Name == "is" && F.Arity == 2) {
    bindPattern(S->arg(0), MeasureKind::IntValue, evalArith(S->arg(1)));
    return;
  }
  if (Name == "=" && F.Arity == 2) {
    // Propagate every defined measure across the equation, both ways.
    for (MeasureKind M :
         {MeasureKind::ListLength, MeasureKind::TermSize,
          MeasureKind::TermDepth, MeasureKind::IntValue}) {
      ExprRef L = sizeOf(S->arg(0), M);
      ExprRef R = sizeOf(S->arg(1), M);
      if (!L->isInfinity())
        bindPattern(S->arg(1), M, L);
      else if (!R->isInfinity())
        bindPattern(S->arg(0), M, R);
    }
    return;
  }
  if (Name == "length" && F.Arity == 2) {
    ExprRef L = sizeOf(S->arg(0), MeasureKind::ListLength);
    if (!L->isInfinity())
      bindPattern(S->arg(1), MeasureKind::IntValue, L);
    ExprRef N = sizeOf(S->arg(1), MeasureKind::IntValue);
    if (!N->isInfinity())
      bindPattern(S->arg(0), MeasureKind::ListLength, N);
    return;
  }
  // Comparisons, type tests, cut: no size effects.
}

void ClauseSizeWalker::processUserCall(Functor F, const StructTerm *S,
                                       LiteralFacts &Facts) {
  const PredicateSizeInfo &Callee = SA.info(F);

  // Input sizes.
  std::vector<unsigned> Inputs;
  std::vector<ExprRef> InputSizes;
  for (unsigned I = 0; I != F.Arity; ++I) {
    if (I < Callee.Modes.size() && Callee.Modes[I] == ArgMode::Out)
      continue;
    Inputs.push_back(I);
    MeasureKind M = I < Callee.Measures.size() ? Callee.Measures[I]
                                               : MeasureKind::TermSize;
    ExprRef Size = S ? sizeOf(S->arg(I), M) : makeNumber(0);
    Facts.InputSizes[I] = Size;
    InputSizes.push_back(Size);
  }

  // Output sizes via Psi.
  for (unsigned O = 0; O != F.Arity; ++O) {
    if (O >= Callee.Modes.size() || Callee.Modes[O] != ArgMode::Out)
      continue;
    MeasureKind M = O < Callee.Measures.size() ? Callee.Measures[O]
                                               : MeasureKind::TermSize;
    ExprRef Form = O < Callee.OutputSize.size()
                       ? (Lower ? Callee.OutputSize[O].Lo
                                : Callee.OutputSize[O].Hi)
                       : nullptr;
    // An unknown (Infinity) lower input size must not be substituted into
    // a closed form — it could vanish inside a min node and launder into
    // a fake bound.  The whole call output is unknown then.
    bool UnknownInput = false;
    if (Lower)
      for (const ExprRef &In : InputSizes)
        UnknownInput |= In->isInfinity();
    if (Lower && UnknownInput)
      Form = nullptr;
    ExprRef Psi;
    if (Form) {
      // Solved: instantiate the closed form.  Bounds are monotone in
      // their inputs (Section 6), so instantiating the lower form at
      // lower input sizes stays a lower bound.
      EquationDef Def;
      for (unsigned I : Inputs)
        Def.Params.push_back(SizeAnalysis::paramName(I));
      Def.Rhs = Form;
      Psi = instantiateDef(Def, InputSizes);
    } else if (KeepSCCCalls && P.lookup(F)) {
      Psi = makeCall(SA.psiName(F, O), InputSizes);
    } else if (Lower && M != MeasureKind::IntValue) {
      // Unknown callee output: any structural size is still >= 0.
      Psi = makeNumber(0);
    } else {
      Psi = makeInfinity();
    }
    if (S)
      bindPattern(S->arg(O), M, Psi);
  }
}

ClauseFacts ClauseSizeWalker::walk(const Clause &C) {
  ClauseFacts Facts;
  const PredicateSizeInfo &Self = SA.info(Pred);
  const StructTerm *Head = dynCast<StructTerm>(deref(C.head()));

  // Seed the environment from the head input patterns.
  for (unsigned I = 0; I != Pred.Arity; ++I) {
    if (I < Self.Modes.size() && Self.Modes[I] == ArgMode::Out)
      continue;
    MeasureKind M = I < Self.Measures.size() ? Self.Measures[I]
                                             : MeasureKind::TermSize;
    if (Head)
      bindPattern(Head->arg(I), M, makeVar(SizeAnalysis::paramName(I)));
  }

  // Walk the body literals in control order.
  for (const Term *Lit : C.bodyLiterals()) {
    LiteralFacts LF;
    LF.Literal = Lit;
    LF.F = literalFunctor(Lit);
    if (!LF.F) {
      Facts.Literals.push_back(std::move(LF));
      continue;
    }
    LF.InputSizes.assign(LF.F->Arity, nullptr);
    const StructTerm *S = dynCast<StructTerm>(deref(Lit));
    if (isBuiltinFunctor(*LF.F, Symbols)) {
      LF.IsBuiltin = true;
      processBuiltin(*LF.F, S);
    } else {
      processUserCall(*LF.F, S, LF);
    }
    Facts.Literals.push_back(std::move(LF));
  }

  // Read off the head output sizes.
  Facts.HeadOutputSizes.assign(Pred.Arity, nullptr);
  for (unsigned O = 0; O != Pred.Arity; ++O) {
    if (O >= Self.Modes.size() || Self.Modes[O] != ArgMode::Out)
      continue;
    MeasureKind M = O < Self.Measures.size() ? Self.Measures[O]
                                             : MeasureKind::TermSize;
    Facts.HeadOutputSizes[O] =
        Head ? sizeOf(Head->arg(O), M) : makeNumber(0);
  }
  return Facts;
}

ExprRef granlog::trustTermToExpr(const Term *T, const SymbolTable &Symbols) {
  T = deref(T);
  if (const IntTerm *I = dynCast<IntTerm>(T))
    return makeNumber(I->value());
  if (const AtomTerm *A = dynCast<AtomTerm>(T)) {
    const std::string &Name = Symbols.text(A->name());
    if (Name == "inf")
      return makeInfinity();
    if (Name.size() >= 2 && Name[0] == 'n')
      return makeVar(Name);
    return makeInfinity();
  }
  const StructTerm *S = dynCast<StructTerm>(T);
  if (!S)
    return makeInfinity();
  const std::string &Name = Symbols.text(S->name());
  if (S->arity() == 1) {
    ExprRef A = trustTermToExpr(S->arg(0), Symbols);
    if (Name == "log2")
      return makeLog2(A);
    if (Name == "-")
      return makeScale(Rational(-1), A);
    return makeInfinity();
  }
  if (S->arity() != 2)
    return makeInfinity();
  ExprRef A = trustTermToExpr(S->arg(0), Symbols);
  ExprRef B = trustTermToExpr(S->arg(1), Symbols);
  if (Name == "+")
    return makeAdd(A, B);
  if (Name == "-")
    return makeSub(A, B);
  if (Name == "*")
    return makeMul(A, B);
  if (Name == "/" || Name == "//") {
    if (B->isNumber() && !B->number().isZero())
      return makeScale(Rational(1) / B->number(), A);
    return makeInfinity();
  }
  if (Name == "^" || Name == "**")
    return makePow(A, B);
  if (Name == "min")
    return makeMin({A, B});
  if (Name == "max")
    return makeMax(A, B);
  return makeInfinity();
}

//===----------------------------------------------------------------------===//
// SizeAnalysis driver
//===----------------------------------------------------------------------===//

SizeAnalysis::SizeAnalysis(const Program &P, const CallGraph &CG,
                           const ModeTable &Modes)
    : P(&P), CG(&CG), Modes(&Modes) {}

const PredicateSizeInfo &SizeAnalysis::info(Functor F) const {
  static const PredicateSizeInfo Empty;
  auto It = Info.find(F);
  return It == Info.end() ? Empty : It->second;
}

std::string SizeAnalysis::psiName(Functor F, unsigned OutPos) const {
  return "psi:" + P->symbols().text(F) + "#" + std::to_string(OutPos);
}

ClauseFacts SizeAnalysis::analyzeClause(Functor Pred, const Clause &C,
                                        bool KeepSCCCalls,
                                        bool Lower) const {
  ClauseSizeWalker Walker(*this, Pred, KeepSCCCalls, Lower);
  return Walker.walk(C);
}

void SizeAnalysis::run() {
  for (unsigned Id = 0; Id != CG->numSCCs(); ++Id)
    analyzeSCC(CG->sccMembers(Id));
}

void SizeAnalysis::prepareConcurrent() {
  for (unsigned Id = 0; Id != CG->numSCCs(); ++Id)
    for (Functor F : CG->sccMembers(Id)) {
      Info.try_emplace(F);
      RecArgCache.try_emplace(F, -2);
    }
  // recursionArg can also be queried for predicates outside the call
  // graph (e.g. dead code reached through explain); cover them too.
  for (const auto &Pred : P->predicates())
    RecArgCache.try_emplace(Pred->functor(), -2);
}

namespace {

/// Is \p E of the form param - k or param / b (+ small constant), i.e.
/// strictly decreasing in \p Param?  Mirrors classifyRecArg in the
/// recurrence extractor.
bool isDecreasingIn(const ExprRef &E, const std::string &Param) {
  std::optional<std::vector<ExprRef>> Poly = polynomialIn(E, Param);
  if (!Poly || Poly->size() != 2)
    return false;
  const ExprRef &C0 = (*Poly)[0];
  const ExprRef &C1 = (*Poly)[1];
  if (!C1->isNumber() || !C0->isNumber())
    return false;
  Rational Slope = C1->number();
  if (Slope == Rational(1))
    return C0->number().isNegative();
  return Slope > Rational(0) && Slope < Rational(1) &&
         !C0->number().isNegative() && C0->number() <= Rational(1);
}

} // namespace

int SizeAnalysis::recursionArg(Functor F) const {
  auto Cached = RecArgCache.find(F);
  if (Cached == RecArgCache.end())
    Cached = RecArgCache.try_emplace(F, -2).first; // sequential-only path
  if (int V = Cached->second.load(std::memory_order_relaxed); V != -2)
    return V;
  const Predicate *Pred = P->lookup(F);
  if (!Pred) {
    Cached->second.store(-1, std::memory_order_relaxed);
    return -1;
  }
  std::vector<unsigned> Inputs = Modes->inputPositions(F);

  // Gather the input sizes of direct self-calls across clauses.
  std::vector<std::vector<ExprRef>> SelfCallSizes;
  for (const Clause &C : Pred->clauses()) {
    if (CG->classifyClause(F, C) == ClauseRecursion::Nonrecursive)
      continue;
    ClauseFacts Facts = analyzeClause(F, C, /*KeepSCCCalls=*/true);
    for (const LiteralFacts &LF : Facts.Literals)
      if (LF.F && *LF.F == F)
        SelfCallSizes.push_back(LF.InputSizes);
  }

  int Result = -1;
  for (unsigned R : Inputs) {
    const PredicateSizeInfo &Self = info(F);
    if (R < Self.Measures.size() && Self.Measures[R] == MeasureKind::Void)
      continue;
    bool AllDecrease = !SelfCallSizes.empty();
    for (const std::vector<ExprRef> &Sizes : SelfCallSizes) {
      if (R >= Sizes.size() || !Sizes[R] ||
          !isDecreasingIn(Sizes[R], paramName(R))) {
        AllDecrease = false;
        break;
      }
    }
    if (AllDecrease) {
      Result = static_cast<int>(R);
      break;
    }
  }
  // Pure mutual recursion (no direct self-calls): default to the first
  // measurable input position.
  if (Result < 0 && SelfCallSizes.empty() && CG->isRecursive(F)) {
    for (unsigned R : Inputs) {
      const PredicateSizeInfo &Self = info(F);
      if (R < Self.Measures.size() && Self.Measures[R] != MeasureKind::Void) {
        Result = static_cast<int>(R);
        break;
      }
    }
  }
  // Re-find: the computation above may have grown the map (sequential
  // lazy inserts), invalidating Cached.
  RecArgCache.find(F)->second.store(Result, std::memory_order_relaxed);
  return Result;
}

void SizeAnalysis::degradeSCC(const std::vector<Functor> &Members) {
  for (Functor F : Members) {
    PredicateSizeInfo &PI = Info[F];
    PI.Modes = Modes->modes(F);
    if (PI.Measures.empty())
      PI.Measures.assign(F.Arity, MeasureKind::TermSize);
    PI.OutputSize.assign(F.Arity, BoundInterval{});
    PI.OutputSchema.assign(F.Arity, std::string());
    PI.OutputWhy.assign(F.Arity, std::string());
    PI.RecArgPos = -1;
    PI.Exact = false;
    for (unsigned O : Modes->outputPositions(F)) {
      PI.OutputSize[O].Hi = makeInfinity();
      PI.OutputWhy[O] = budgetWhy(*ResourceBudget, MeterKind::Deadline);
    }
    ResourceBudget->record(
        {"size", MeterKind::Deadline, P->symbols().text(F)});
  }
}

void SizeAnalysis::analyzeSCC(const std::vector<Functor> &Members) {
  // One "size" span per SCC, degraded or not — every driver (sequential,
  // parallel, planned) funnels through here, so a trace covers every
  // analyzed SCC.
  TraceSpan Phase(Trace, SpanKind::Size, TraceProg,
                  Members.empty() ? Tracer::None : CG->sccId(Members[0]));
  // Resource governance: one deterministic meter per SCC, installed for
  // everything this SCC does (clause walking, substitution, solving).
  // The deadline check doubles as the parallel driver's cancellation —
  // once a terminator fires, every remaining SCC job degrades in O(|SCC|).
  WorkMeter Meter(ResourceBudget);
  MeterScope Scope(&Meter);
  if (ResourceBudget && ResourceBudget->expired()) {
    degradeSCC(Members);
    return;
  }

  // Phase 1: resolve modes and measures for all members so that calls
  // within the SCC see them.
  for (Functor F : Members) {
    const Predicate *Pred = P->lookup(F);
    PredicateSizeInfo &PI = Info[F];
    PI.Modes = Modes->modes(F);
    PI.Measures = Pred ? inferMeasures(*Pred, P->symbols())
                       : std::vector<MeasureKind>(F.Arity,
                                                  MeasureKind::TermSize);
  }

  // Phase 1b: cross-predicate measure propagation.  If a head variable is
  // passed straight to a callee position with a more specific measure
  // (e.g. a list consumed by nrev inside a wrapper predicate), the head
  // position adopts that measure — but only for inferred measures, never
  // for declared ones.
  for (int Round = 0; Round != 2; ++Round) {
    for (Functor F : Members) {
      const Predicate *Pred = P->lookup(F);
      if (!Pred || Pred->hasDeclaredMeasures())
        continue;
      PredicateSizeInfo &PI = Info[F];
      for (const Clause &C : Pred->clauses()) {
        const StructTerm *Head = dynCast<StructTerm>(deref(C.head()));
        if (!Head)
          continue;
        for (const Term *Lit : C.bodyLiterals()) {
          std::optional<Functor> LF = literalFunctor(Lit);
          const StructTerm *S = dynCast<StructTerm>(deref(Lit));
          if (!LF || !S || isBuiltinFunctor(*LF, P->symbols()))
            continue;
          const PredicateSizeInfo &Callee = info(*LF);
          if (Callee.Measures.empty())
            continue;
          for (unsigned J = 0; J != S->arity(); ++J) {
            const VarTerm *V = dynCast<VarTerm>(deref(S->arg(J)));
            if (!V)
              continue;
            for (unsigned I = 0; I != Head->arity(); ++I) {
              if (deref(Head->arg(I)) != V)
                continue;
              if (measureRank(Callee.Measures[J]) >
                  measureRank(PI.Measures[I]))
                PI.Measures[I] = Callee.Measures[J];
            }
          }
        }
      }
    }
  }

  // Phase 2: clause facts with symbolic SCC Psi calls.
  std::map<Functor, std::vector<ClauseFacts>> Facts;
  for (Functor F : Members) {
    const Predicate *Pred = P->lookup(F);
    if (!Pred)
      continue;
    for (const Clause &C : Pred->clauses())
      Facts[F].push_back(analyzeClause(F, C, /*KeepSCCCalls=*/true));
  }

  // Phase 3: solve each output of each member.
  for (Functor F : Members) {
    PredicateSizeInfo &PI = Info[F];
    PI.OutputSize.assign(F.Arity, BoundInterval{});
    PI.OutputSchema.assign(F.Arity, std::string());
    PI.OutputWhy.assign(F.Arity, std::string());
    PI.RecArgPos = recursionArg(F);
    for (unsigned O : Modes->outputPositions(F)) {
      bool Exact = true;
      PI.OutputSize[O].Hi = solveOutput(F, O, Facts[F], &Exact,
                                        &PI.OutputSchema[O],
                                        &PI.OutputWhy[O]);
      // Budget guard on the stored closed form: an oversized tree would
      // make every consumer (including report rendering) enumerate an
      // exponentially large expression, so it degrades to Infinity here.
      if (PI.OutputSize[O].Hi)
        Meter.noteTreeSize(PI.OutputSize[O].Hi->treeSize());
      if (std::optional<MeterKind> K = Meter.over()) {
        if (PI.OutputSize[O].Hi && !PI.OutputSize[O].Hi->isInfinity()) {
          PI.OutputSize[O].Hi = makeInfinity();
          PI.OutputSchema[O].clear();
          PI.OutputWhy[O] = budgetWhy(*ResourceBudget, *K);
          Exact = false;
        }
        ResourceBudget->record({"size", *K, P->symbols().text(F)});
      }
      PI.Exact &= Exact;
      if (statsActive(Stats)) {
        statsAdd(Stats, "size.outputs");
        if (PI.OutputSize[O].Hi && PI.OutputSize[O].Hi->isInfinity())
          statsAdd(Stats, "size.infinity");
        if (!Exact)
          statsAdd(Stats, "size.relaxed");
      }
    }
  }

  // Phase 4 (BoundsMode::Both only): the dual lower-bound pass.  Clause
  // facts are re-walked in the lower direction — per-predicate Exact does
  // not track callee exactness, so seeding Lo from the upper results
  // would be unsound (a nonrecursive wrapper around a relaxed callee is
  // marked Exact yet its Hi is only an upper bound).
  if (Bounds != BoundsMode::Both)
    return;
  std::map<Functor, std::vector<ClauseFacts>> LowerFacts;
  for (Functor F : Members) {
    const Predicate *Pred = P->lookup(F);
    if (!Pred)
      continue;
    for (const Clause &C : Pred->clauses())
      LowerFacts[F].push_back(
          analyzeClause(F, C, /*KeepSCCCalls=*/true, /*Lower=*/true));
  }
  for (Functor F : Members) {
    PredicateSizeInfo &PI = Info[F];
    for (unsigned O : Modes->outputPositions(F)) {
      PI.OutputSize[O].Lo = solveOutputLower(F, O, LowerFacts[F]);
      // Same oversized-tree guard as the upper pass; a degraded lower
      // bound falls back to the measure's universal floor.
      if (PI.OutputSize[O].Lo) {
        Meter.noteTreeSize(PI.OutputSize[O].Lo->treeSize());
        if (Meter.over())
          PI.OutputSize[O].Lo =
              PI.Measures[O] == MeasureKind::IntValue ? nullptr
                                                      : makeNumber(0);
      }
      // Intersect with the upper bound: a relaxed upper closed form can
      // dip below the true value at tiny sizes (where the recurrence
      // never actually lands), which would invert the interval there.
      // min(Lo, Hi) only ever weakens Lo, so it stays a sound lower
      // bound while pinning Lo <= Hi pointwise.
      if (PI.OutputSize[O].Lo && PI.OutputSize[O].Hi &&
          !PI.OutputSize[O].Hi->isInfinity())
        PI.OutputSize[O].Lo =
            makeMin({PI.OutputSize[O].Lo, PI.OutputSize[O].Hi});
    }
  }
}

ExprRef SizeAnalysis::solveOutput(Functor F, unsigned OutPos,
                                  const std::vector<ClauseFacts> &Facts,
                                  bool *Exact, std::string *Schema,
                                  std::string *Why) {
  *Exact = true;
  // Budget checkpoint: once this SCC's meter is exhausted every further
  // output degrades straight to Infinity (a sound upper bound) with the
  // meter as provenance instead of doing more work.
  if (WorkMeter *M = currentWorkMeter()) {
    if (std::optional<MeterKind> K = M->over()) {
      *Exact = false;
      *Why = budgetWhy(*M->budget(), *K);
      return makeInfinity();
    }
  }
  const Predicate *Pred = P->lookup(F);
  if (!Pred) {
    *Why = "predicate has no clauses";
    return makeInfinity();
  }

  // A ':- trust_size' declaration overrides the inference entirely.
  if (const Term *Trust = Pred->trustSize(OutPos)) {
    *Exact = false;
    *Schema = "trusted";
    statsAdd(Stats, "size.trusted");
    return trustTermToExpr(Trust, P->symbols());
  }

  std::vector<unsigned> Inputs = Modes->inputPositions(F);
  std::vector<std::string> Params;
  for (unsigned I : Inputs)
    Params.push_back(paramName(I));

  const std::string SelfName = psiName(F, OutPos);
  unsigned SCCId = CG->sccId(F);

  // Names of all Psi functions belonging to this SCC.
  std::vector<std::string> SCCNames;
  std::map<std::string, EquationDef> OtherDefs;
  for (Functor M : CG->sccMembers(SCCId)) {
    std::vector<std::string> MParams;
    for (unsigned I : Modes->inputPositions(M))
      MParams.push_back(paramName(I));
    for (unsigned O : Modes->outputPositions(M)) {
      std::string Name = psiName(M, O);
      SCCNames.push_back(Name);
      if (Name == SelfName)
        continue;
      // Merged rhs of the other Psi (max over its clauses).
      std::vector<ExprRef> Rhses;
      if (const Predicate *MP = P->lookup(M)) {
        for (size_t CI = 0; CI != MP->clauses().size(); ++CI) {
          ClauseFacts CF =
              M == F ? Facts[CI]
                     : analyzeClause(M, MP->clauses()[CI],
                                     /*KeepSCCCalls=*/true);
          if (O < CF.HeadOutputSizes.size() && CF.HeadOutputSizes[O])
            Rhses.push_back(CF.HeadOutputSizes[O]);
        }
      }
      if (Rhses.empty())
        Rhses.push_back(makeInfinity());
      OtherDefs[Name] = EquationDef{MParams, makeMax(std::move(Rhses))};
    }
  }

  auto ContainsSCCCall = [&](const ExprRef &E) {
    for (const std::string &Name : SCCNames)
      if (containsCall(E, Name))
        return true;
    return false;
  };

  int RecArg = recursionArg(F);
  int RecIndex = -1;
  for (size_t I = 0; I != Inputs.size(); ++I)
    if (static_cast<int>(Inputs[I]) == RecArg)
      RecIndex = static_cast<int>(I);

  MeasureKind RecMeasure =
      RecArg >= 0 ? info(F).Measures[RecArg] : MeasureKind::TermSize;

  std::vector<Boundary> Boundaries;
  std::vector<ExprRef> Floors;
  std::vector<Recurrence> Recs;

  for (size_t CI = 0; CI != Facts.size(); ++CI) {
    const Clause &C = Pred->clauses()[CI];
    ExprRef Rhs = Facts[CI].HeadOutputSizes[OutPos];
    if (!Rhs)
      continue;
    if (!ContainsSCCCall(Rhs)) {
      // Base clause: boundary condition if the recursion argument's head
      // pattern has a constant size, else a floor for the final max.
      if (RecArg >= 0) {
        const StructTerm *Head = dynCast<StructTerm>(deref(C.head()));
        std::optional<int64_t> At =
            Head ? minPatternSize(Head->arg(RecArg), RecMeasure,
                                  P->symbols())
                 : std::nullopt;
        if (At) {
          Boundaries.push_back({Rational(*At), Rhs});
          continue;
        }
      }
      Floors.push_back(Rhs);
      continue;
    }
    // Recursive clause: eliminate other SCC unknowns, then extract.
    ExprRef Reduced;
    {
      TraceSpan Norm(Trace, SpanKind::Normalize);
      Reduced = inlineCalls(
          Rhs, OtherDefs, static_cast<unsigned>(OtherDefs.size()) + 2);
    }
    // inlineCalls stops early on meter exhaustion; attribute the failure
    // to the budget (not to "mutual recursion") so explain() is truthful.
    if (WorkMeter *M = currentWorkMeter()) {
      if (std::optional<MeterKind> K = M->over()) {
        *Exact = false;
        *Why = budgetWhy(*M->budget(), *K);
        return makeInfinity();
      }
    }
    bool StillForeign = false;
    for (const std::string &Name : SCCNames)
      if (Name != SelfName && containsCall(Reduced, Name))
        StillForeign = true;
    if (StillForeign || RecIndex < 0) {
      *Exact = false;
      *Why = StillForeign
                 ? "mutual recursion could not be reduced to a single "
                   "equation by substitution"
                 : "no single decreasing recursion argument";
      statsAdd(Stats, "size.recurrence_failed");
      return makeInfinity();
    }
    std::optional<Recurrence> R = extractRecurrence(
        SelfName, Params, static_cast<unsigned>(RecIndex), Reduced);
    if (!R) {
      *Exact = false;
      *Why = "recursive clause is not in difference-equation normal form "
             "(self-call argument not n-k or n/b)";
      statsAdd(Stats, "size.recurrence_failed");
      return makeInfinity();
    }
    statsAdd(Stats, "size.recurrences");
    Recs.push_back(std::move(*R));
  }

  if (Recs.empty()) {
    // Nonrecursive for this output: upper bound is the max across clauses.
    std::vector<ExprRef> All = Floors;
    for (const Boundary &B : Boundaries)
      All.push_back(B.Value);
    if (All.empty()) {
      *Why = "no clause binds this output position";
      return makeInfinity();
    }
    *Exact = All.size() == 1;
    return makeMax(std::move(All));
  }

  bool MergeExact = Recs.size() == 1;
  Recurrence Merged = mergeRecurrences(Recs, /*Sum=*/false);
  Merged.Boundaries = Boundaries;
  SolveResult S = Solver.solve(Merged);
  *Exact = S.Exact && MergeExact && Floors.empty();
  *Schema = S.SchemaName;
  *Why = S.Why;
  if (S.failed())
    return makeInfinity();
  ExprRef Result = S.Closed;
  if (!Floors.empty()) {
    Floors.push_back(Result);
    Result = makeMax(std::move(Floors));
  }
  return Result;
}

namespace {

/// min over lower bounds, where Infinity means "unknown" rather than
/// "unbounded": makeMin would drop an Infinity operand and launder the
/// unknown into a fake bound, so any Infinity poisons the whole min.
ExprRef makeMinLower(std::vector<ExprRef> Ops) {
  for (const ExprRef &Op : Ops)
    if (Op->isInfinity())
      return makeInfinity();
  return makeMin(std::move(Ops));
}

} // namespace

ExprRef SizeAnalysis::solveOutputLower(Functor F, unsigned OutPos,
                                       const std::vector<ClauseFacts> &Facts) {
  // The measure's universal floor, used whenever no bound is derivable:
  // sizes are non-negative, but an integer *value* has no floor at all.
  const MeasureKind OutM = OutPos < info(F).Measures.size()
                               ? info(F).Measures[OutPos]
                               : MeasureKind::TermSize;
  const ExprRef Fallback =
      OutM == MeasureKind::IntValue ? nullptr : makeNumber(0);

  if (WorkMeter *M = currentWorkMeter())
    if (M->over())
      return Fallback;
  const Predicate *Pred = P->lookup(F);
  if (!Pred)
    return Fallback;

  // ':- trust_size' asserts the actual output size, so it is a valid
  // bound in both directions.
  if (const Term *Trust = Pred->trustSize(OutPos)) {
    ExprRef T = trustTermToExpr(Trust, P->symbols());
    return T->isInfinity() ? Fallback : T;
  }

  std::vector<unsigned> Inputs = Modes->inputPositions(F);
  std::vector<std::string> Params;
  for (unsigned I : Inputs)
    Params.push_back(paramName(I));

  const std::string SelfName = psiName(F, OutPos);
  unsigned SCCId = CG->sccId(F);

  // The other SCC unknowns, with their *lower* right-hand sides
  // (min-merged across clauses — the executed clause may be any of them).
  std::vector<std::string> SCCNames;
  std::map<std::string, EquationDef> OtherDefs;
  for (Functor M : CG->sccMembers(SCCId)) {
    std::vector<std::string> MParams;
    for (unsigned I : Modes->inputPositions(M))
      MParams.push_back(paramName(I));
    for (unsigned O : Modes->outputPositions(M)) {
      std::string Name = psiName(M, O);
      SCCNames.push_back(Name);
      if (Name == SelfName)
        continue;
      std::vector<ExprRef> Rhses;
      if (const Predicate *MP = P->lookup(M)) {
        for (size_t CI = 0; CI != MP->clauses().size(); ++CI) {
          ClauseFacts CF = M == F ? Facts[CI]
                                  : analyzeClause(M, MP->clauses()[CI],
                                                  /*KeepSCCCalls=*/true,
                                                  /*Lower=*/true);
          if (O < CF.HeadOutputSizes.size() && CF.HeadOutputSizes[O])
            Rhses.push_back(CF.HeadOutputSizes[O]);
        }
      }
      if (Rhses.empty())
        Rhses.push_back(makeInfinity());
      OtherDefs[Name] = EquationDef{MParams, makeMinLower(std::move(Rhses))};
    }
  }

  auto ContainsSCCCall = [&](const ExprRef &E) {
    for (const std::string &Name : SCCNames)
      if (containsCall(E, Name))
        return true;
    return false;
  };

  int RecArg = recursionArg(F);
  int RecIndex = -1;
  for (size_t I = 0; I != Inputs.size(); ++I)
    if (static_cast<int>(Inputs[I]) == RecArg)
      RecIndex = static_cast<int>(I);

  MeasureKind RecMeasure =
      RecArg >= 0 ? info(F).Measures[RecArg] : MeasureKind::TermSize;

  std::vector<Boundary> Boundaries;
  std::vector<ExprRef> Floors;
  std::vector<Recurrence> Recs;

  for (size_t CI = 0; CI != Facts.size(); ++CI) {
    const Clause &C = Pred->clauses()[CI];
    ExprRef Rhs = Facts[CI].HeadOutputSizes[OutPos];
    if (!Rhs)
      continue;
    if (!ContainsSCCCall(Rhs)) {
      // Infinity boundary values are fine: chooseBaseLower drops them
      // soundly (f(At) >= infinity-as-unknown imposes nothing).
      if (RecArg >= 0) {
        const StructTerm *Head = dynCast<StructTerm>(deref(C.head()));
        std::optional<int64_t> At =
            Head ? minPatternSize(Head->arg(RecArg), RecMeasure,
                                  P->symbols())
                 : std::nullopt;
        if (At) {
          Boundaries.push_back({Rational(*At), Rhs});
          continue;
        }
      }
      Floors.push_back(Rhs);
      continue;
    }
    ExprRef Reduced;
    {
      TraceSpan Norm(Trace, SpanKind::Normalize);
      Reduced = inlineCalls(
          Rhs, OtherDefs, static_cast<unsigned>(OtherDefs.size()) + 2);
    }
    if (WorkMeter *M = currentWorkMeter())
      if (M->over())
        return Fallback;
    bool StillForeign = false;
    for (const std::string &Name : SCCNames)
      if (Name != SelfName && containsCall(Reduced, Name))
        StillForeign = true;
    if (StillForeign || RecIndex < 0)
      return Fallback;
    // The lower dual of the upper extractor's max-to-sum relaxation:
    // select one operand under max, zero out min over self-calls.
    Reduced = lowerSelectOverCalls(Reduced, SelfName);
    std::optional<Recurrence> R = extractRecurrence(
        SelfName, Params, static_cast<unsigned>(RecIndex), Reduced);
    if (!R)
      return Fallback;
    Recs.push_back(std::move(*R));
  }

  if (Recs.empty()) {
    // Nonrecursive for this output: the executed clause may be any of
    // them, so the lower bound is the min across clauses.
    std::vector<ExprRef> All = Floors;
    for (const Boundary &B : Boundaries)
      All.push_back(B.Value);
    if (All.empty())
      return Fallback;
    ExprRef Lo = makeMinLower(std::move(All));
    return Lo->isInfinity() ? Fallback : Lo;
  }

  Recurrence Merged = mergeRecurrencesLower(Recs);
  Merged.Boundaries = Boundaries;
  SolveResult S = Solver.solve(Merged);
  if (S.failed() || !S.Lo)
    return Fallback;
  ExprRef Lo = S.Lo;
  if (!Floors.empty()) {
    Floors.push_back(Lo);
    Lo = makeMinLower(std::move(Floors));
  }
  return Lo->isInfinity() ? Fallback : Lo;
}
