//===- cost/CostAnalysis.cpp ----------------------------------------------===//

#include "cost/CostAnalysis.h"

#include "support/Tracer.h"

using namespace granlog;

const char *CostMetric::name() const {
  switch (Kind) {
  case CostMetricKind::Resolutions:
    return "resolutions";
  case CostMetricKind::Unifications:
    return "unifications";
  case CostMetricKind::Instructions:
    return "instructions";
  }
  return "?";
}

Rational CostMetric::headCost(unsigned Arity) const {
  switch (Kind) {
  case CostMetricKind::Resolutions:
    return Rational(1);
  case CostMetricKind::Unifications:
    return Rational(static_cast<int64_t>(Arity));
  case CostMetricKind::Instructions:
    // A WAM-flavoured estimate: call/allocate overhead plus one get/unify
    // instruction per argument.
    return Rational(static_cast<int64_t>(2 + 2 * Arity));
  }
  return Rational(1);
}

Rational CostMetric::builtinCost(Functor F, const SymbolTable &Symbols) const {
  switch (Kind) {
  case CostMetricKind::Resolutions:
    // Builtins are not resolutions.
    return Rational(0);
  case CostMetricKind::Unifications: {
    const std::string &Name = Symbols.text(F.Name);
    return Rational(Name == "=" ? 1 : 0);
  }
  case CostMetricKind::Instructions:
    return Rational(2);
  }
  return Rational(0);
}

CostAnalysis::CostAnalysis(const Program &P, const CallGraph &CG,
                           const ModeTable &Modes, const Determinacy &Det,
                           const SizeAnalysis &Sizes, CostMetric Metric,
                           const WamCompiler *Wam)
    : P(&P), CG(&CG), Modes(&Modes), Det(&Det), Sizes(&Sizes),
      Metric(Metric), Wam(Wam), Sols(P, CG, Det) {}

const PredicateCostInfo &CostAnalysis::info(Functor F) const {
  static const PredicateCostInfo Empty;
  auto It = Info.find(F);
  return It == Info.end() ? Empty : It->second;
}

std::string CostAnalysis::costName(Functor F) const {
  return "cost:" + P->symbols().text(F);
}

void CostAnalysis::run() {
  for (unsigned Id = 0; Id != CG->numSCCs(); ++Id)
    analyzeSCC(CG->sccMembers(Id));
}

void CostAnalysis::prepareConcurrent() {
  for (unsigned Id = 0; Id != CG->numSCCs(); ++Id)
    for (Functor F : CG->sccMembers(Id))
      Info.try_emplace(F);
}

namespace {

/// Walks a clause body structurally, consuming the flat literal facts in
/// the same pre-order that flattenBodyLiterals produced them, and builds
/// the cost expression:
///   (A , B), (A & B):   cost(A) + cost(B)
///   (C -> T ; E):       cost(C) + max(cost(T), cost(E))   (Section 4's
///                       "H Test -> Alt1 ; Alt2" refinement)
///   (A ; B):            cost(A) + cost(B)   (both may run on backtracking)
///   \+ A:               cost(A)
///
/// With \p Lower the walker builds the failure-free minimal-solution
/// *lower* bound instead: no solution multipliers (every reached goal
/// executes at least once), (C -> T ; E) and (A ; B) pay the cheaper
/// branch, and \+ A floors to 0 (it may fail after arbitrarily little
/// work).  Lower-direction call costs never produce Infinity (unknowns
/// floor to 0), so plain makeMin is safe here.
class BodyCostWalker {
public:
  BodyCostWalker(const SolutionsAnalysis &Sols, const SymbolTable &Symbols,
                 const std::vector<LiteralFacts> &Lits,
                 const std::function<ExprRef(const LiteralFacts &)> &CallCost,
                 bool Lower = false)
      : Sols(Sols), Symbols(Symbols), Lits(Lits), CallCost(CallCost),
        Lower(Lower), Mult(makeNumber(1)) {}

  /// Cost of \p Goal; as a side effect Mult accumulates the product of
  /// the goal's solution bounds, so later siblings get equation (2)'s
  /// prefix factor.
  ExprRef cost(const Term *Goal) {
    Goal = deref(Goal);
    const StructTerm *S = dynCast<StructTerm>(Goal);
    if (S) {
      const std::string &Name = Symbols.text(S->name());
      if (S->arity() == 2 && (Name == "," || Name == "&")) {
        // Sequence explicitly: cost() mutates Mult left to right.
        ExprRef A = cost(S->arg(0));
        ExprRef B = cost(S->arg(1));
        return makeAdd(A, B);
      }
      if (S->arity() == 2 && Name == ";") {
        const StructTerm *Cond = dynCast<StructTerm>(deref(S->arg(0)));
        if (Cond && Cond->arity() == 2 &&
            Symbols.text(Cond->name()) == "->") {
          ExprRef C = cost(Cond->arg(0));
          // The condition commits to its first solution.
          ExprRef AfterCond = Mult;
          ExprRef T = cost(Cond->arg(1));
          ExprRef MultT = Mult;
          Mult = AfterCond;
          ExprRef E = cost(S->arg(1));
          Mult = makeMax(MultT, Mult);
          // Lower: the condition runs, then exactly one branch.
          return makeAdd(C, Lower ? makeMin({T, E}) : makeMax(T, E));
        }
        ExprRef Before = Mult;
        ExprRef A = cost(S->arg(0));
        Mult = Before;
        ExprRef B = cost(S->arg(1));
        Mult = makeMul(Before, solsExpr(Goal));
        // Lower: a failure-free run may take either branch alone.
        return Lower ? makeMin({A, B}) : makeAdd(A, B);
      }
      if (S->arity() == 2 && Name == "->") {
        ExprRef C = cost(S->arg(0));
        ExprRef T = cost(S->arg(1));
        return makeAdd(C, T);
      }
      if (S->arity() == 1 && Name == "\\+") {
        ExprRef Before = Mult;
        ExprRef Inner = cost(S->arg(0));
        Mult = Before; // negation yields at most one (empty) solution
        // Lower: \+ may cut off after arbitrarily little work (the walk
        // above still consumed the inner literal facts to stay in sync).
        return Lower ? makeNumber(0) : Inner;
      }
    }
    // A literal: take the next recorded fact.  'true' produces no fact.
    if (const AtomTerm *A = dynCast<AtomTerm>(Goal))
      if (Symbols.text(A->name()) == "true")
        return makeNumber(0);
    assert(Next < Lits.size() && "cost walk out of sync with facts");
    const LiteralFacts &LF = Lits[Next++];
    if (Lower)
      return CallCost(LF); // executed at least once; no solution factors
    ExprRef Result = makeMul(Mult, CallCost(LF));
    Mult = makeMul(Mult, solsExpr(Goal));
    return Result;
  }

private:
  ExprRef solsExpr(const Term *Goal) {
    std::optional<int64_t> N = Sols.goalSolutions(Goal);
    return N ? makeNumber(*N) : makeInfinity();
  }

  const SolutionsAnalysis &Sols;
  const SymbolTable &Symbols;
  const std::vector<LiteralFacts> &Lits;
  const std::function<ExprRef(const LiteralFacts &)> &CallCost;
  bool Lower;
  ExprRef Mult;
  size_t Next = 0;
};

} // namespace

ExprRef CostAnalysis::clauseCost(Functor F, unsigned ClauseIndex,
                                 const Clause &C, bool Lower) {
  const SymbolTable &Symbols = P->symbols();
  // Input sizes per literal come from the size analysis, with same-SCC Psi
  // functions already solved (the size analysis has completed).  The
  // lower direction reads lower input sizes (Infinity = unknown there).
  ClauseFacts Facts = Sizes->analyzeClause(F, C, /*KeepSCCCalls=*/false,
                                           Lower);
  bool UseWam = Wam && Metric.kind() == CostMetricKind::Instructions;

  size_t LitIndex = 0;
  std::function<ExprRef(const LiteralFacts &)> CallCost =
      [&](const LiteralFacts &LF) -> ExprRef {
    // With a WAM cost model, the caller-side argument loading and call
    // instruction are charged per compiled literal.
    ExprRef Setup = makeNumber(0);
    if (UseWam)
      Setup = makeNumber(static_cast<int64_t>(
          Wam->literalCost(F, ClauseIndex,
                           static_cast<unsigned>(LitIndex))));
    ++LitIndex;
    if (!LF.F)
      return Setup;
    if (LF.IsBuiltin) {
      // findall runs an arbitrary goal to exhaustion: no static bound
      // above, and nothing below (the goal may fail immediately).
      if (Symbols.text(LF.F->Name) == "findall")
        return Lower ? Setup : makeInfinity();
      return UseWam ? Setup
                    : makeNumber(Metric.builtinCost(*LF.F, Symbols));
    }
    if (!P->lookup(*LF.F))
      return Lower ? Setup : makeInfinity(); // undefined: unbounded above
    // Gather the callee's input sizes in input-position order.
    std::vector<ExprRef> Args;
    std::vector<std::string> Params;
    bool UnknownInput = false;
    for (unsigned I : Modes->inputPositions(*LF.F)) {
      Params.push_back(SizeAnalysis::paramName(I));
      Args.push_back(I < LF.InputSizes.size() && LF.InputSizes[I]
                         ? LF.InputSizes[I]
                         : makeInfinity());
      UnknownInput |= Args.back()->isInfinity();
    }
    if (Lower) {
      // An unknown lower input size must not be substituted into a
      // closed form (it could vanish inside a min node); the call's
      // contribution floors to 0 then — sound, costs are non-negative.
      if (UnknownInput)
        return Setup;
      const PredicateCostInfo &Callee = info(*LF.F);
      if (Callee.Cost.Lo)
        return makeAdd(Setup,
                       instantiateDef({Params, Callee.Cost.Lo}, Args));
      return makeAdd(Setup,
                     makeCall(costName(*LF.F), Args)); // same SCC
    }
    const PredicateCostInfo &Callee = info(*LF.F);
    if (Callee.Cost.Hi)
      return makeAdd(Setup, instantiateDef({Params, Callee.Cost.Hi}, Args));
    return makeAdd(Setup,
                   makeCall(costName(*LF.F), Args)); // same SCC: symbolic
  };

  ExprRef HeadCost =
      UseWam ? makeNumber(static_cast<int64_t>(Wam->headCost(F, ClauseIndex)))
             : makeNumber(Metric.headCost(F.Arity));
  BodyCostWalker Walker(Sols, Symbols, Facts.Literals, CallCost, Lower);
  return makeAdd(HeadCost, Walker.cost(C.body()));
}

void CostAnalysis::degradeSCC(const std::vector<Functor> &Members) {
  for (Functor F : Members) {
    PredicateCostInfo &CI = Info[F];
    CI.Cost.Hi = makeInfinity();
    CI.Cost.Lo = Bounds == BoundsMode::Both ? makeNumber(0) : nullptr;
    CI.Exact = false;
    CI.Schema.clear();
    CI.Why = budgetWhy(*ResourceBudget, MeterKind::Deadline);
    ResourceBudget->record(
        {"cost", MeterKind::Deadline, P->symbols().text(F)});
  }
}

void CostAnalysis::analyzeSCC(const std::vector<Functor> &Members) {
  // One "cost" span per SCC, mirroring SizeAnalysis::analyzeSCC.
  TraceSpan Phase(Trace, SpanKind::Cost, TraceProg,
                  Members.empty() ? Tracer::None : CG->sccId(Members[0]));
  // Resource governance mirrors SizeAnalysis::analyzeSCC: one meter per
  // SCC, shared by clause-cost construction and solving, so exhaustion is
  // a function of this SCC's work alone (driver-independent).
  WorkMeter Meter(ResourceBudget);
  MeterScope Scope(&Meter);
  if (ResourceBudget && ResourceBudget->expired()) {
    degradeSCC(Members);
    return;
  }

  // Clause costs with symbolic SCC calls.
  std::map<Functor, std::vector<ExprRef>> ClauseCosts;
  for (Functor F : Members) {
    const Predicate *Pred = P->lookup(F);
    if (!Pred)
      continue;
    for (size_t I = 0; I != Pred->clauses().size(); ++I) {
      // Once exhausted, remaining clause costs pin to Infinity (sound:
      // Infinity absorbs everything the clause could cost) instead of
      // building ever-larger expressions.
      if (Meter.over()) {
        ClauseCosts[F].push_back(makeInfinity());
        continue;
      }
      ClauseCosts[F].push_back(
          clauseCost(F, static_cast<unsigned>(I), Pred->clauses()[I]));
      if (!ClauseCosts[F].back()->isInfinity())
        Meter.noteTreeSize(ClauseCosts[F].back()->treeSize());
    }
  }
  for (Functor F : Members) {
    PredicateCostInfo &CI = Info[F];
    bool Exact = true;
    std::string Schema, Why;
    if (std::optional<MeterKind> K = Meter.over()) {
      CI.Cost.Hi = makeInfinity();
      Exact = false;
      Why = budgetWhy(*ResourceBudget, *K);
      ResourceBudget->record({"cost", *K, P->symbols().text(F)});
    } else {
      CI.Cost.Hi = solvePredicate(F, ClauseCosts[F], &Exact, &Schema, &Why);
      if (CI.Cost.Hi)
        Meter.noteTreeSize(CI.Cost.Hi->treeSize());
      if (std::optional<MeterKind> After = Meter.over()) {
        if (CI.Cost.Hi && !CI.Cost.Hi->isInfinity()) {
          CI.Cost.Hi = makeInfinity();
          Schema.clear();
          Why = budgetWhy(*ResourceBudget, *After);
          Exact = false;
        }
        ResourceBudget->record({"cost", *After, P->symbols().text(F)});
      }
    }
    CI.Exact = Exact;
    CI.Schema = Schema;
    CI.Why = Why;
    if (CI.Cost.Hi && CI.Cost.Hi->isInfinity() && CI.Why.empty())
      CI.Why = "a clause body contains an unbounded goal (undefined "
               "predicate, findall, or an unbounded solution count)";
    if (statsActive(Stats)) {
      statsAdd(Stats, "cost.predicates");
      if (CI.Cost.Hi && CI.Cost.Hi->isInfinity())
        statsAdd(Stats, "cost.infinity");
      if (!Exact)
        statsAdd(Stats, "cost.relaxed");
    }
  }

  // The dual lower-bound pass (BoundsMode::Both only).  Clause costs are
  // rebuilt in the lower direction — the upper expressions embed solution
  // multipliers and max-merges that have no lower reading.
  if (Bounds != BoundsMode::Both)
    return;
  for (Functor F : Members) {
    PredicateCostInfo &CI = Info[F];
    const Predicate *Pred = P->lookup(F);
    std::vector<ExprRef> LowerCosts;
    if (Pred)
      for (size_t I = 0; I != Pred->clauses().size(); ++I) {
        if (Meter.over()) {
          LowerCosts.push_back(makeNumber(0));
          continue;
        }
        LowerCosts.push_back(clauseCost(F, static_cast<unsigned>(I),
                                        Pred->clauses()[I], /*Lower=*/true));
        Meter.noteTreeSize(LowerCosts.back()->treeSize());
      }
    CI.Cost.Lo = Meter.over() ? makeNumber(0)
                              : solvePredicateLower(F, LowerCosts);
    // Same oversized-tree guard as the upper pass; the degraded lower
    // bound is 0.
    Meter.noteTreeSize(CI.Cost.Lo->treeSize());
    if (Meter.over())
      CI.Cost.Lo = makeNumber(0);
    // Intersect with the upper bound: a relaxed upper closed form can
    // dip below the true cost at tiny sizes (where the recurrence never
    // actually lands), which would invert the interval there.  min(Lo,
    // Hi) only ever weakens Lo, so it stays a sound lower bound while
    // pinning Lo <= Hi pointwise.
    if (CI.Cost.Hi && !CI.Cost.Hi->isInfinity())
      CI.Cost.Lo = makeMin({CI.Cost.Lo, CI.Cost.Hi});
  }
}

ExprRef CostAnalysis::solvePredicate(Functor F,
                                     const std::vector<ExprRef> &ClauseCosts,
                                     bool *Exact, std::string *Schema,
                                     std::string *Why) {
  *Exact = true;
  const Predicate *Pred = P->lookup(F);
  if (!Pred || ClauseCosts.empty()) {
    *Why = "predicate has no clauses";
    return makeInfinity();
  }

  // A ':- trust_cost' declaration overrides the inference entirely.
  if (const Term *Trust = Pred->trustCost()) {
    *Exact = false;
    *Schema = "trusted";
    statsAdd(Stats, "cost.trusted");
    return trustTermToExpr(Trust, P->symbols());
  }

  std::vector<unsigned> Inputs = Modes->inputPositions(F);
  std::vector<std::string> Params;
  for (unsigned I : Inputs)
    Params.push_back(SizeAnalysis::paramName(I));

  unsigned SCCId = CG->sccId(F);
  const std::string SelfName = costName(F);
  bool Exclusive = Det->hasExclusiveClauses(F);

  // Definitions of the other SCC members' cost functions for elimination.
  std::vector<std::string> SCCNames;
  std::map<std::string, EquationDef> OtherDefs;
  for (Functor M : CG->sccMembers(SCCId)) {
    std::string Name = costName(M);
    SCCNames.push_back(Name);
    if (Name == SelfName)
      continue;
    const Predicate *MP = P->lookup(M);
    if (!MP)
      continue;
    std::vector<std::string> MParams;
    for (unsigned I : Modes->inputPositions(M))
      MParams.push_back(SizeAnalysis::paramName(I));
    std::vector<ExprRef> Rhses;
    for (size_t I = 0; I != MP->clauses().size(); ++I)
      Rhses.push_back(clauseCost(M, static_cast<unsigned>(I),
                                 MP->clauses()[I]));
    ExprRef Merged = Det->hasExclusiveClauses(M) ? makeMax(Rhses)
                                                 : makeAdd(Rhses);
    OtherDefs[Name] = EquationDef{MParams, Merged};
  }

  auto ContainsSCCCall = [&](const ExprRef &E) {
    for (const std::string &Name : SCCNames)
      if (containsCall(E, Name))
        return true;
    return false;
  };

  int RecArg = Sizes->recursionArg(F);
  int RecIndex = -1;
  for (size_t I = 0; I != Inputs.size(); ++I)
    if (static_cast<int>(Inputs[I]) == RecArg)
      RecIndex = static_cast<int>(I);
  MeasureKind RecMeasure = RecArg >= 0 && !Sizes->info(F).Measures.empty()
                               ? Sizes->info(F).Measures[RecArg]
                               : MeasureKind::TermSize;

  std::vector<Boundary> Boundaries;
  std::vector<ExprRef> Bases; // base clause costs (non-boundary "floors")
  std::vector<Recurrence> Recs;

  for (size_t CI = 0; CI != ClauseCosts.size(); ++CI) {
    const Clause &C = Pred->clauses()[CI];
    ExprRef Rhs = ClauseCosts[CI];
    if (!ContainsSCCCall(Rhs)) {
      if (RecArg >= 0) {
        const StructTerm *Head = dynCast<StructTerm>(deref(C.head()));
        std::optional<int64_t> At =
            Head ? minPatternSize(Head->arg(RecArg), RecMeasure,
                                  P->symbols())
                 : std::nullopt;
        if (At) {
          Boundaries.push_back({Rational(*At), Rhs});
          continue;
        }
      }
      Bases.push_back(Rhs);
      continue;
    }
    ExprRef Reduced;
    {
      TraceSpan Norm(Trace, SpanKind::Normalize);
      Reduced = inlineCalls(
          Rhs, OtherDefs, static_cast<unsigned>(OtherDefs.size()) + 2);
    }
    // inlineCalls stops early on meter exhaustion; attribute the failure
    // to the budget (not to "mutual recursion") so explain() is truthful.
    if (WorkMeter *M = currentWorkMeter()) {
      if (std::optional<MeterKind> K = M->over()) {
        *Exact = false;
        *Why = budgetWhy(*M->budget(), *K);
        return makeInfinity();
      }
    }
    bool StillForeign = false;
    for (const std::string &Name : SCCNames)
      if (Name != SelfName && containsCall(Reduced, Name))
        StillForeign = true;
    if (StillForeign || RecIndex < 0) {
      *Exact = false;
      *Why = StillForeign
                 ? "mutual recursion could not be reduced to a single "
                   "equation by substitution"
                 : "no single decreasing recursion argument";
      statsAdd(Stats, "cost.recurrence_failed");
      return makeInfinity();
    }
    std::optional<Recurrence> R = extractRecurrence(
        SelfName, Params, static_cast<unsigned>(RecIndex), Reduced);
    if (!R) {
      *Exact = false;
      *Why = "recursive clause is not in difference-equation normal form "
             "(self-call argument not n-k or n/b)";
      statsAdd(Stats, "cost.recurrence_failed");
      return makeInfinity();
    }
    statsAdd(Stats, "cost.recurrences");
    Recs.push_back(std::move(*R));
  }

  if (Recs.empty()) {
    // Nonrecursive: combine clause costs by max (exclusive) or + (paper
    // equation (1)).
    std::vector<ExprRef> All = Bases;
    for (const Boundary &B : Boundaries)
      All.push_back(B.Value);
    if (All.empty()) {
      *Why = "predicate has no clauses";
      return makeInfinity();
    }
    *Exact = All.size() == 1;
    return Exclusive ? makeMax(std::move(All)) : makeAdd(std::move(All));
  }

  bool MergeExact = Recs.size() == 1;
  Recurrence Merged = mergeRecurrences(Recs, /*Sum=*/!Exclusive);
  // Non-exclusive predicates pay the non-recursive clauses at every level
  // too (every clause is tried); fold them into the additive part.
  if (!Exclusive && !Bases.empty()) {
    std::vector<ExprRef> Parts{Merged.Additive};
    for (const ExprRef &B : Bases)
      Parts.push_back(B);
    Merged.Additive = makeAdd(std::move(Parts));
    MergeExact = false;
  }
  if (!Exclusive && !Boundaries.empty()) {
    std::vector<ExprRef> Parts{Merged.Additive};
    for (const Boundary &B : Boundaries) {
      // Only the head-unification cost of a base clause is paid when its
      // head fails to match; bound it by the full base cost.
      Parts.push_back(B.Value);
    }
    Merged.Additive = makeAdd(std::move(Parts));
    MergeExact = false;
  }
  Merged.Boundaries = Boundaries;
  SolveResult S = Solver.solve(Merged);
  *Schema = S.SchemaName;
  *Why = S.Why;
  *Exact = S.Exact && MergeExact && Bases.empty() && Exclusive;
  if (S.failed())
    return makeInfinity();
  ExprRef Result = S.Closed;
  if (!Bases.empty()) {
    // Base clauses applicable at any size floor the bound.
    Bases.push_back(Result);
    Result = Exclusive ? makeMax(std::move(Bases)) : Result;
  }
  return Result;
}

ExprRef
CostAnalysis::solvePredicateLower(Functor F,
                                  const std::vector<ExprRef> &ClauseCosts) {
  // Costs are non-negative, so 0 is always a sound lower bound: every
  // failure path below degrades to it.
  const ExprRef Fallback = makeNumber(0);
  const Predicate *Pred = P->lookup(F);
  if (!Pred || ClauseCosts.empty())
    return Fallback;

  // ':- trust_cost' asserts the actual cost, valid in both directions.
  if (const Term *Trust = Pred->trustCost()) {
    ExprRef T = trustTermToExpr(Trust, P->symbols());
    return T->isInfinity() ? Fallback : T;
  }

  std::vector<unsigned> Inputs = Modes->inputPositions(F);
  std::vector<std::string> Params;
  for (unsigned I : Inputs)
    Params.push_back(SizeAnalysis::paramName(I));

  unsigned SCCId = CG->sccId(F);
  const std::string SelfName = costName(F);

  // The other SCC members' *lower* cost right-hand sides, min-merged
  // across clauses (the executed clause may be any of them; exclusivity
  // is irrelevant in the lower direction).
  std::vector<std::string> SCCNames;
  std::map<std::string, EquationDef> OtherDefs;
  for (Functor M : CG->sccMembers(SCCId)) {
    std::string Name = costName(M);
    SCCNames.push_back(Name);
    if (Name == SelfName)
      continue;
    const Predicate *MP = P->lookup(M);
    if (!MP)
      continue;
    std::vector<std::string> MParams;
    for (unsigned I : Modes->inputPositions(M))
      MParams.push_back(SizeAnalysis::paramName(I));
    std::vector<ExprRef> Rhses;
    for (size_t I = 0; I != MP->clauses().size(); ++I)
      Rhses.push_back(clauseCost(M, static_cast<unsigned>(I),
                                 MP->clauses()[I], /*Lower=*/true));
    OtherDefs[Name] = EquationDef{
        MParams, Rhses.empty() ? makeNumber(0) : makeMin(std::move(Rhses))};
  }

  auto ContainsSCCCall = [&](const ExprRef &E) {
    for (const std::string &Name : SCCNames)
      if (containsCall(E, Name))
        return true;
    return false;
  };

  int RecArg = Sizes->recursionArg(F);
  int RecIndex = -1;
  for (size_t I = 0; I != Inputs.size(); ++I)
    if (static_cast<int>(Inputs[I]) == RecArg)
      RecIndex = static_cast<int>(I);
  MeasureKind RecMeasure = RecArg >= 0 && !Sizes->info(F).Measures.empty()
                               ? Sizes->info(F).Measures[RecArg]
                               : MeasureKind::TermSize;

  std::vector<Boundary> Boundaries;
  std::vector<ExprRef> Bases;
  std::vector<Recurrence> Recs;

  for (size_t CI = 0; CI != ClauseCosts.size(); ++CI) {
    const Clause &C = Pred->clauses()[CI];
    ExprRef Rhs = ClauseCosts[CI];
    if (!ContainsSCCCall(Rhs)) {
      if (RecArg >= 0) {
        const StructTerm *Head = dynCast<StructTerm>(deref(C.head()));
        std::optional<int64_t> At =
            Head ? minPatternSize(Head->arg(RecArg), RecMeasure,
                                  P->symbols())
                 : std::nullopt;
        if (At) {
          Boundaries.push_back({Rational(*At), Rhs});
          continue;
        }
      }
      Bases.push_back(Rhs);
      continue;
    }
    ExprRef Reduced;
    {
      TraceSpan Norm(Trace, SpanKind::Normalize);
      Reduced = inlineCalls(
          Rhs, OtherDefs, static_cast<unsigned>(OtherDefs.size()) + 2);
    }
    if (WorkMeter *M = currentWorkMeter())
      if (M->over())
        return Fallback;
    bool StillForeign = false;
    for (const std::string &Name : SCCNames)
      if (Name != SelfName && containsCall(Reduced, Name))
        StillForeign = true;
    if (StillForeign || RecIndex < 0)
      return Fallback;
    // The lower dual of the upper extractor's max-to-sum relaxation.
    Reduced = lowerSelectOverCalls(Reduced, SelfName);
    std::optional<Recurrence> R = extractRecurrence(
        SelfName, Params, static_cast<unsigned>(RecIndex), Reduced);
    if (!R)
      return Fallback;
    Recs.push_back(std::move(*R));
  }

  if (Recs.empty()) {
    // Nonrecursive: the executed clause may be any of them, so min.
    std::vector<ExprRef> All = Bases;
    for (const Boundary &B : Boundaries)
      All.push_back(B.Value);
    return All.empty() ? Fallback : makeMin(std::move(All));
  }

  Recurrence Merged = mergeRecurrencesLower(Recs);
  Merged.Boundaries = Boundaries;
  SolveResult S = Solver.solve(Merged);
  if (S.failed() || !S.Lo)
    return Fallback;
  ExprRef Lo = S.Lo;
  if (!Bases.empty()) {
    // A base clause applicable at any size caps the minimal work.
    Bases.push_back(Lo);
    Lo = makeMin(std::move(Bases));
  }
  return Lo->isInfinity() ? Fallback : Lo;
}

std::optional<double>
CostAnalysis::costAt(Functor F, const std::vector<double> &InputSizes) const {
  const PredicateCostInfo &CI = info(F);
  if (!CI.Cost.Hi)
    return std::nullopt;
  std::vector<unsigned> Inputs = Modes->inputPositions(F);
  if (Inputs.size() != InputSizes.size())
    return std::nullopt;
  std::map<std::string, double> Env;
  for (size_t I = 0; I != Inputs.size(); ++I)
    Env[SizeAnalysis::paramName(Inputs[I])] = InputSizes[I];
  return evaluate(CI.Cost.Hi, Env);
}

std::optional<double>
CostAnalysis::costLoAt(Functor F,
                       const std::vector<double> &InputSizes) const {
  const PredicateCostInfo &CI = info(F);
  if (!CI.Cost.Lo)
    return std::nullopt;
  std::vector<unsigned> Inputs = Modes->inputPositions(F);
  if (Inputs.size() != InputSizes.size())
    return std::nullopt;
  std::map<std::string, double> Env;
  for (size_t I = 0; I != Inputs.size(); ++I)
    Env[SizeAnalysis::paramName(Inputs[I])] = InputSizes[I];
  return evaluate(CI.Cost.Lo, Env);
}
