//===- cost/CostAnalysis.h - Predicate cost estimation --------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cost analysis of Section 4: for every predicate p, an upper bound
/// Cost_p on the work performed by a call, as a closed-form function of
/// its input argument sizes.
///
/// Per clause (equation (3), determinate case):
///   Cost_cl <= Cost_H + sum_i Cost_{L_i}(sizes of L_i's inputs)
/// where the input sizes come from the argument-size analysis.  Clause
/// costs combine by max when the clauses are provably mutually exclusive
/// (the "indexing" refinement of Section 4) and by + otherwise (equation
/// (1)).  Recursive clauses yield difference equations solved by the
/// schema table; unsolvable equations yield Infinity, meaning the
/// predicate is always worth parallelizing.
///
/// Cost metrics: number of resolutions (Cost_H = 1), number of
/// unifications (Cost_H = arity of the head), or a WAM-flavoured
/// instruction weighting.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_COST_COSTANALYSIS_H
#define GRANLOG_COST_COSTANALYSIS_H

#include "analysis/Determinacy.h"
#include "analysis/Solutions.h"
#include "wam/WamCompiler.h"
#include "size/SizeAnalysis.h"

#include <unordered_map>

namespace granlog {

/// The unit of cost (Section 4: "the number of resolutions, the number of
/// unifications, or the number of instructions executed").
enum class CostMetricKind { Resolutions, Unifications, Instructions };

/// A cost metric: how much head unification and each builtin cost.
class CostMetric {
public:
  static CostMetric resolutions() {
    return CostMetric(CostMetricKind::Resolutions);
  }
  static CostMetric unifications() {
    return CostMetric(CostMetricKind::Unifications);
  }
  static CostMetric instructions() {
    return CostMetric(CostMetricKind::Instructions);
  }

  CostMetricKind kind() const { return Kind; }
  const char *name() const;

  /// Cost of resolving a clause head of the given arity.
  Rational headCost(unsigned Arity) const;

  /// Cost of executing builtin \p F once.
  Rational builtinCost(Functor F, const SymbolTable &Symbols) const;

private:
  explicit CostMetric(CostMetricKind Kind) : Kind(Kind) {}
  CostMetricKind Kind;
};

/// Cost-analysis result for one predicate.
struct PredicateCostInfo {
  /// Closed-form cost bounds in the input-size parameters "n<pos+1>".
  /// Cost.Hi is the upper bound (Infinity when no bound was found;
  /// nullptr only for an un-analyzed / same-SCC-in-progress entry).
  /// Cost.Lo is the failure-free minimal-solution lower bound, filled
  /// only in BoundsMode::Both (null otherwise); costs are non-negative,
  /// so 0 is always a valid degraded lower bound and a filled Lo is
  /// never null or Infinity.
  BoundInterval Cost;
  bool Exact = false;
  std::string Schema; ///< solver schema used ("" if none / nonrecursive)
  /// Provenance: why the cost fell to Infinity (empty otherwise);
  /// surfaced by GranularityAnalyzer::explain().
  std::string Why;
};

/// The cost analysis driver.  Requires a completed SizeAnalysis.
class CostAnalysis {
public:
  /// \p Wam (optional) supplies exact per-clause instruction counts for
  /// the Instructions metric; without it a flat per-arity estimate is
  /// used.
  CostAnalysis(const Program &P, const CallGraph &CG, const ModeTable &Modes,
               const Determinacy &Det, const SizeAnalysis &Sizes,
               CostMetric Metric, const WamCompiler *Wam = nullptr);

  /// Runs over all SCCs in topological order.
  void run();

  /// Pre-inserts every Info slot the SCC jobs will write; call once
  /// before scheduling analyzeSCCById jobs.
  void prepareConcurrent();

  /// Analyzes one SCC; every callee SCC (smaller id) and the same SCC's
  /// size analysis must be complete.
  void analyzeSCCById(unsigned Id) { analyzeSCC(CG->sccMembers(Id)); }

  /// Installs a previously computed result for \p F, as if its SCC had
  /// been analyzed (see SizeAnalysis::injectInfo).  Must precede the
  /// dirty SCCs' jobs: clauseCost treats a null callee Cost.Hi as a
  /// same-SCC symbolic call, so a missing injection would silently change
  /// a caller's equation rather than fail.
  void injectInfo(Functor F, PredicateCostInfo CI) {
    Info[F] = std::move(CI);
  }

  const PredicateCostInfo &info(Functor F) const;
  CostMetric metric() const { return Metric; }

  /// The number-of-solutions bounds used for equation (2)'s Sols factors.
  const SolutionsAnalysis &solutionsAnalysis() const { return Sols; }

  /// The symbolic name of the cost function of \p F.
  std::string costName(Functor F) const;

  /// Evaluates Cost_F (the upper bound) for concrete input sizes (by
  /// input position order).  Returns +inf for Infinity, nullopt if the
  /// function is missing or the wrong number of sizes was supplied.
  std::optional<double> costAt(Functor F,
                               const std::vector<double> &InputSizes) const;

  /// Evaluates the lower cost bound Cost.Lo the same way; nullopt when no
  /// lower bound was computed (upper-only mode).
  std::optional<double> costLoAt(Functor F,
                                 const std::vector<double> &InputSizes) const;

  /// Selects which bounds to compute; call before run().  Both adds a
  /// dual lower-bound pass per SCC (failure-free minimal solutions, min
  /// over clauses) after the upper pass; the default (Upper) performs
  /// exactly the pre-interval analysis.
  void setBounds(BoundsMode B) { Bounds = B; }

  /// Removes a difference-equation schema before run() (ablations).
  void disableSchema(const std::string &Name) {
    Solver.disableSchema(Name);
  }

  /// Records domain counters ("cost.*") and solver counters
  /// ("cost.solver.*") into \p Stats; call before run().
  void setStats(StatsRegistry *Stats) {
    this->Stats = Stats;
    Solver.setStats(Stats, "cost.solver");
  }

  /// Attaches a recurrence memo table (shared with the size layer and, in
  /// batch mode, across runs); call before run().
  void setSolverCache(SolverCache *Cache) { Solver.setCache(Cache); }

  /// Attaches the run's resource budget; call before run().  Metering is
  /// per SCC exactly as in SizeAnalysis::setBudget, so exhaustion is
  /// deterministic and driver-independent.
  void setBudget(Budget *B) { ResourceBudget = B; }

  /// Emits one "cost" span per analyzeSCC (tagged with program \p Prog
  /// and the SCC id) plus nested normalize/solve/cache-probe spans into
  /// \p T; call before run().  Null disables tracing (the default);
  /// results are identical either way.
  void setTracer(Tracer *T, uint32_t Prog) {
    Trace = T;
    TraceProg = Prog;
    Solver.setTracer(T);
  }

private:
  void analyzeSCC(const std::vector<Functor> &Members);

  /// Deadline/terminator fired: fill every member's info with the sound
  /// degraded value (CostFn = Infinity) without analyzing.
  void degradeSCC(const std::vector<Functor> &Members);

  /// Builds the cost expression of one clause; SCC-internal calls appear
  /// as symbolic Call nodes.  With \p Lower the walk builds the
  /// failure-free minimal-solution lower bound instead: no solution
  /// multipliers, if-then-else pays the condition plus the cheaper
  /// branch, disjunctions take the min, negation and unbounded goals
  /// floor to 0.
  ExprRef clauseCost(Functor F, unsigned ClauseIndex, const Clause &C,
                     bool Lower = false);

  ExprRef solvePredicate(Functor F, const std::vector<ExprRef> &ClauseCosts,
                         bool *Exact, std::string *Schema, std::string *Why);

  /// Dual of solvePredicate: min over clauses (the executed clause may be
  /// any of them), min-merged recurrences, SolveResult::Lo.  Any failure
  /// degrades to 0 — costs are non-negative, so 0 is always sound.
  ExprRef solvePredicateLower(Functor F,
                              const std::vector<ExprRef> &ClauseCosts);

  const Program *P;
  const CallGraph *CG;
  const ModeTable *Modes;
  const Determinacy *Det;
  const SizeAnalysis *Sizes;
  CostMetric Metric;
  const WamCompiler *Wam;
  BoundsMode Bounds = BoundsMode::Upper;
  DiffEqSolver Solver;
  SolutionsAnalysis Sols;
  StatsRegistry *Stats = nullptr;
  Budget *ResourceBudget = nullptr;
  Tracer *Trace = nullptr;
  uint32_t TraceProg = 0xffffffffu; ///< Tracer::None
  std::unordered_map<Functor, PredicateCostInfo> Info;
};

} // namespace granlog

#endif // GRANLOG_COST_COSTANALYSIS_H
