//===- diffeq/Recurrence.h - Difference equations -------------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The normal form of the difference equations produced by the size and
/// cost analyses (paper Sections 3-5):
///
///   f(n) = sum_i  C_i * f(n - K_i)        (shift terms,  K_i > 0)
///        + sum_j  D_j * f(n / B_j)        (divide terms, B_j > 1)
///        + g(n)                           (additive part)
///   with boundary conditions f(a_1) = v_1, ...
///
/// extractRecurrence() brings a right-hand-side expression containing
/// self-calls into this form (or fails); inlineCalls() performs the
/// substitution step that reduces a *system* of equations from a mutually
/// recursive SCC to single-variable equations (paper Section 5's variable
/// elimination, specialized to substitution).
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_DIFFEQ_RECURRENCE_H
#define GRANLOG_DIFFEQ_RECURRENCE_H

#include "expr/Expr.h"
#include "support/Rational.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace granlog {

/// C * f(n - Shift).
struct ShiftTerm {
  Rational Coeff;
  Rational Shift; ///< > 0

  bool operator==(const ShiftTerm &) const = default;
};

/// C * f(n / Divisor + Offset).
struct DivideTerm {
  Rational Coeff;
  Rational Divisor;           ///< > 1
  Rational Offset = Rational(0); ///< small additive constant, in [0, 1]

  bool operator==(const DivideTerm &) const = default;
};

/// f(At) = Value.  The defaulted equality compares Value by pointer,
/// which is structural equality under hash-consing.
struct Boundary {
  Rational At;
  ExprRef Value;

  bool operator==(const Boundary &) const = default;
};

/// A difference equation in one variable, plus boundary conditions.
struct Recurrence {
  std::string Function; ///< the unknown, e.g. "cost:nrev/2"
  std::string Var;      ///< the recursion variable, e.g. "n"
  std::vector<ShiftTerm> ShiftTerms;
  std::vector<DivideTerm> DivideTerms;
  ExprRef Additive; ///< g(n); free of calls to Function
  std::vector<Boundary> Boundaries;

  bool hasSelfTerms() const {
    return !ShiftTerms.empty() || !DivideTerms.empty();
  }

  std::string str() const;
};

/// Brings "Function(Params) = Rhs" into Recurrence normal form.
///
/// Every call to \p Function in \p Rhs must (a) occur linearly with a
/// constant rational coefficient, (b) have its argument at position
/// \p RecIndex of the form Var - k (k > 0) or Var / b (b > 1), and (c)
/// leave all other argument positions unchanged (syntactically equal to
/// the corresponding parameter, or a call-free constant).  Max nodes that
/// contain self-calls are relaxed to sums first, which is sound for upper
/// bounds over non-negative values.
///
/// Returns nullopt if the right-hand side is not of this shape; the caller
/// then reports the solution Infinity (always parallel), per Section 5.
std::optional<Recurrence>
extractRecurrence(const std::string &Function,
                  const std::vector<std::string> &Params, unsigned RecIndex,
                  const ExprRef &Rhs);

/// One equation of a system: the unknown's parameter names and its
/// right-hand side.
struct EquationDef {
  std::vector<std::string> Params;
  ExprRef Rhs;
};

/// Instantiates \p Def's right-hand side with the given arguments
/// (capture-avoiding: parameters are renamed apart first).
ExprRef instantiateDef(const EquationDef &Def,
                       const std::vector<ExprRef> &Args);

/// Substitutes the definitions in \p Defs into \p E (each call
/// name(args...) becomes Defs[name].Rhs with parameters replaced by args),
/// repeating up to \p Rounds times.  Used to eliminate the other unknowns
/// of a mutually recursive SCC before extractRecurrence.
ExprRef inlineCalls(const ExprRef &E,
                    const std::map<std::string, EquationDef> &Defs,
                    unsigned Rounds);

/// Merges the recurrences of alternative clauses into one sound upper
/// bound.  With \p Sum = false (mutually exclusive clauses) the merge is a
/// pointwise max:  max_i (sum_j c_ij f(n-k_j) + g_i)
///              <= sum_j (max_i c_ij) f(n-k_j) + max_i g_i
/// for non-negative monotone f.  With \p Sum = true (clauses that may all
/// contribute solutions) coefficients and additive parts are summed, which
/// bounds the total work of trying every clause (paper equation (1)).
/// Boundary conditions are unioned in both cases.
Recurrence mergeRecurrences(const std::vector<Recurrence> &Rs, bool Sum);

/// Merges the lower recurrences of alternative clauses into one sound
/// *lower* bound (failure-free minimal solutions: the executed clause may
/// be any of them, so the merge is a pointwise min):
///   min_i (sum_j c_ij f(n-k_j) + g_i)
///     >= sum_j (min_i c_ij) f(n-k_j) + min_i g_i
/// by superadditivity of min over sums of non-negative terms.  A self
/// term absent from some clause has coefficient 0 there, so only terms
/// present in *every* clause survive (with the min coefficient); additive
/// parts combine by min; boundary conditions are unioned.
Recurrence mergeRecurrencesLower(const std::vector<Recurrence> &Rs);

/// Rewrites \p E so that every Max/Min node containing a call to
/// \p Function disappears in a lower-bound-sound way: max(a, b) >= a, so a
/// Max keeps (only) its first call-containing operand; min(a, b) has no
/// linear lower form in f, so a Min with self-calls collapses to 0.  The
/// dual of the max-to-sum relaxation extractRecurrence applies for upper
/// bounds — run this first when extracting a *lower* recurrence.
ExprRef lowerSelectOverCalls(const ExprRef &E, const std::string &Function);

} // namespace granlog

#endif // GRANLOG_DIFFEQ_RECURRENCE_H
