//===- diffeq/SolverCache.cpp ---------------------------------------------===//

#include "diffeq/SolverCache.h"

#include <cassert>

using namespace granlog;

namespace {

/// splitmix64-style combine, matching the quality of the interner's hash.
inline size_t hashCombine(size_t Seed, uint64_t V) {
  uint64_t H = Seed ^ (V + 0x9e3779b97f4a7c15ULL + (uint64_t(Seed) << 6) +
                       (uint64_t(Seed) >> 2));
  H ^= H >> 30;
  H *= 0xbf58476d1ce4e5b9ULL;
  H ^= H >> 27;
  H *= 0x94d049bb133111ebULL;
  H ^= H >> 31;
  return static_cast<size_t>(H);
}

inline size_t hashRational(size_t Seed, const Rational &V) {
  Seed = hashCombine(Seed, static_cast<uint64_t>(V.numerator()));
  return hashCombine(Seed, static_cast<uint64_t>(V.denominator()));
}

} // namespace

size_t
SolverCache::CacheKeyHash::operator()(const CacheKey &K) const {
  size_t H = std::hash<std::string>{}(K.TableSignature);
  H = hashCombine(H, K.ShiftTerms.size());
  for (const ShiftTerm &T : K.ShiftTerms) {
    H = hashRational(H, T.Coeff);
    H = hashRational(H, T.Shift);
  }
  H = hashCombine(H, K.DivideTerms.size());
  for (const DivideTerm &T : K.DivideTerms) {
    H = hashRational(H, T.Coeff);
    H = hashRational(H, T.Divisor);
    H = hashRational(H, T.Offset);
  }
  // Interned nodes: the precomputed structural hash identifies the node.
  H = hashCombine(H, K.Additive->hash());
  H = hashCombine(H, K.Boundaries.size());
  for (const Boundary &B : K.Boundaries) {
    H = hashRational(H, B.At);
    H = hashCombine(H, B.Value->hash());
  }
  return H;
}

namespace {

/// Collects distinct variable names in deterministic first-occurrence
/// (pre-order) order.
void collectVars(const ExprRef &E, std::vector<std::string> &Order) {
  if (E->kind() == ExprKind::Var) {
    for (const std::string &Seen : Order)
      if (Seen == E->name())
        return;
    Order.push_back(E->name());
    return;
  }
  for (const ExprRef &Op : E->operands())
    collectVars(Op, Order);
}

bool anyReservedVar(const ExprRef &E) {
  if (E->kind() == ExprKind::Var)
    return E->name().rfind("_g", 0) == 0;
  for (const ExprRef &Op : E->operands())
    if (anyReservedVar(Op))
      return true;
  return false;
}

ExprRef renameVars(
    ExprRef E,
    const std::vector<std::pair<std::string, std::string>> &FromTo) {
  for (const auto &[From, To] : FromTo)
    E = substituteVar(E, From, makeVar(To));
  return E;
}

} // namespace

std::optional<SolverCache::Canonical>
SolverCache::canonicalize(const Recurrence &R) {
  // Equations whose additive part still mentions unknown calls get an
  // equation-specific failure diagnosis from the solver; don't fold those
  // into shared entries.
  if (containsAnyCall(R.Additive))
    return std::nullopt;
  // The reserved canonical prefix in any input variable would make the
  // sequential rename capture; such names never come from the reader, but
  // be safe for synthetic (test) recurrences.
  if (R.Var.rfind("_g", 0) == 0 || anyReservedVar(R.Additive))
    return std::nullopt;
  for (const Boundary &B : R.Boundaries)
    if (anyReservedVar(B.Value))
      return std::nullopt;

  // Canonical numbering: recursion variable first, then every other free
  // variable in first-occurrence order over Additive then the boundary
  // values.
  std::vector<std::string> Order{R.Var};
  collectVars(R.Additive, Order);
  for (const Boundary &B : R.Boundaries)
    collectVars(B.Value, Order);

  Canonical C;
  std::vector<std::pair<std::string, std::string>> Rename; // orig -> canon
  for (size_t I = 0; I != Order.size(); ++I) {
    std::string CanonName = "_g" + std::to_string(I);
    Rename.emplace_back(Order[I], CanonName);
    C.RenameBack.emplace_back(CanonName, Order[I]);
  }

  C.R.Function = "f";
  C.R.Var = "_g0";
  C.R.ShiftTerms = R.ShiftTerms;
  C.R.DivideTerms = R.DivideTerms;
  C.R.Additive = renameVars(R.Additive, Rename);
  for (const Boundary &B : R.Boundaries)
    C.R.Boundaries.push_back({B.At, renameVars(B.Value, Rename)});

  // The key *is* the canonical equation (term order included by design —
  // see header); interning makes the ExprRef members compare by pointer.
  C.Key.ShiftTerms = C.R.ShiftTerms;
  C.Key.DivideTerms = C.R.DivideTerms;
  C.Key.Additive = C.R.Additive;
  C.Key.Boundaries = C.R.Boundaries;
  return C;
}

SolveResult SolverCache::solve(
    const Recurrence &R, const std::string &TableSignature,
    const std::function<SolveResult(const Recurrence &)> &SolveFn,
    Outcome *Out) {
  std::optional<Canonical> C = canonicalize(R);
  if (!C) {
    if (Out)
      *Out = Outcome::Bypass;
    return SolveFn(R);
  }
  CacheKey Key = std::move(C->Key);
  Key.TableSignature = TableSignature;

  std::shared_ptr<Entry> E;
  bool Inserted = false;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto [It, Ins] = Map.try_emplace(std::move(Key), nullptr);
    if (Ins)
      It->second = std::make_shared<Entry>();
    E = It->second;
    Inserted = Ins;
  }
  // The inserting thread is the unique "miss" for this key; call_once
  // makes it the unique solver too, so the miss count equals the number
  // of distinct canonical equations regardless of thread schedule.
  if (Inserted)
    Misses.fetch_add(1, std::memory_order_relaxed);
  else
    Hits.fetch_add(1, std::memory_order_relaxed);
  std::call_once(E->Once, [&] { E->Result = SolveFn(C->R); });

  SolveResult Result = E->Result;
  for (const auto &[Canon, Orig] : C->RenameBack)
    Result.Closed = substituteVar(Result.Closed, Canon, makeVar(Orig));
  if (Out)
    *Out = Inserted ? Outcome::Miss : Outcome::Hit;
  return Result;
}

size_t SolverCache::entries() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Map.size();
}

void SolverCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Map.clear();
  Hits.store(0, std::memory_order_relaxed);
  Misses.store(0, std::memory_order_relaxed);
}
