//===- diffeq/SolverCache.cpp ---------------------------------------------===//

#include "diffeq/SolverCache.h"

#include "support/Io.h"
#include "support/Json.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <fstream>
#include <iterator>

using namespace granlog;

namespace {

/// splitmix64-style combine, matching the quality of the interner's hash.
inline size_t hashCombine(size_t Seed, uint64_t V) {
  uint64_t H = Seed ^ (V + 0x9e3779b97f4a7c15ULL + (uint64_t(Seed) << 6) +
                       (uint64_t(Seed) >> 2));
  H ^= H >> 30;
  H *= 0xbf58476d1ce4e5b9ULL;
  H ^= H >> 27;
  H *= 0x94d049bb133111ebULL;
  H ^= H >> 31;
  return static_cast<size_t>(H);
}

inline size_t hashRational(size_t Seed, const Rational &V) {
  Seed = hashCombine(Seed, static_cast<uint64_t>(V.numerator()));
  return hashCombine(Seed, static_cast<uint64_t>(V.denominator()));
}

} // namespace

size_t
SolverCache::CacheKeyHash::operator()(const CacheKey &K) const {
  size_t H = std::hash<std::string>{}(K.TableSignature);
  H = hashCombine(H, K.ShiftTerms.size());
  for (const ShiftTerm &T : K.ShiftTerms) {
    H = hashRational(H, T.Coeff);
    H = hashRational(H, T.Shift);
  }
  H = hashCombine(H, K.DivideTerms.size());
  for (const DivideTerm &T : K.DivideTerms) {
    H = hashRational(H, T.Coeff);
    H = hashRational(H, T.Divisor);
    H = hashRational(H, T.Offset);
  }
  // Interned nodes: the precomputed structural hash identifies the node.
  H = hashCombine(H, K.Additive->hash());
  H = hashCombine(H, K.Boundaries.size());
  for (const Boundary &B : K.Boundaries) {
    H = hashRational(H, B.At);
    H = hashCombine(H, B.Value->hash());
  }
  return H;
}

namespace {

/// Collects distinct variable names in deterministic first-occurrence
/// (pre-order) order.
void collectVars(const ExprRef &E, std::vector<std::string> &Order) {
  if (E->kind() == ExprKind::Var) {
    for (const std::string &Seen : Order)
      if (Seen == E->name())
        return;
    Order.push_back(E->name());
    return;
  }
  for (const ExprRef &Op : E->operands())
    collectVars(Op, Order);
}

bool anyReservedVar(const ExprRef &E) {
  if (E->kind() == ExprKind::Var)
    return E->name().rfind("_g", 0) == 0;
  for (const ExprRef &Op : E->operands())
    if (anyReservedVar(Op))
      return true;
  return false;
}

ExprRef renameVars(
    ExprRef E,
    const std::vector<std::pair<std::string, std::string>> &FromTo) {
  for (const auto &[From, To] : FromTo)
    E = substituteVar(E, From, makeVar(To));
  return E;
}

} // namespace

std::optional<SolverCache::Canonical>
SolverCache::canonicalize(const Recurrence &R) {
  // Equations whose additive part still mentions unknown calls get an
  // equation-specific failure diagnosis from the solver; don't fold those
  // into shared entries.
  if (containsAnyCall(R.Additive))
    return std::nullopt;
  // The reserved canonical prefix in any input variable would make the
  // sequential rename capture; such names never come from the reader, but
  // be safe for synthetic (test) recurrences.
  if (R.Var.rfind("_g", 0) == 0 || anyReservedVar(R.Additive))
    return std::nullopt;
  for (const Boundary &B : R.Boundaries)
    if (anyReservedVar(B.Value))
      return std::nullopt;

  // Canonical numbering: recursion variable first, then every other free
  // variable in first-occurrence order over Additive then the boundary
  // values.
  std::vector<std::string> Order{R.Var};
  collectVars(R.Additive, Order);
  for (const Boundary &B : R.Boundaries)
    collectVars(B.Value, Order);

  Canonical C;
  std::vector<std::pair<std::string, std::string>> Rename; // orig -> canon
  for (size_t I = 0; I != Order.size(); ++I) {
    std::string CanonName = "_g" + std::to_string(I);
    Rename.emplace_back(Order[I], CanonName);
    C.RenameBack.emplace_back(CanonName, Order[I]);
  }

  C.R.Function = "f";
  C.R.Var = "_g0";
  C.R.ShiftTerms = R.ShiftTerms;
  C.R.DivideTerms = R.DivideTerms;
  C.R.Additive = renameVars(R.Additive, Rename);
  for (const Boundary &B : R.Boundaries)
    C.R.Boundaries.push_back({B.At, renameVars(B.Value, Rename)});

  // The key *is* the canonical equation (term order included by design —
  // see header); interning makes the ExprRef members compare by pointer.
  C.Key.ShiftTerms = C.R.ShiftTerms;
  C.Key.DivideTerms = C.R.DivideTerms;
  C.Key.Additive = C.R.Additive;
  C.Key.Boundaries = C.R.Boundaries;
  return C;
}

SolveResult SolverCache::solve(
    const Recurrence &R, const std::string &TableSignature,
    const std::function<SolveResult(const Recurrence &)> &SolveFn,
    Outcome *Out) {
  std::optional<Canonical> C = canonicalize(R);
  if (!C) {
    if (Out)
      *Out = Outcome::Bypass;
    return SolveFn(R);
  }
  CacheKey Key = std::move(C->Key);
  Key.TableSignature = TableSignature;

  std::shared_ptr<Entry> E;
  bool Inserted = false;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto [It, Ins] = Map.try_emplace(std::move(Key), nullptr);
    if (Ins)
      It->second = std::make_shared<Entry>();
    E = It->second;
    Inserted = Ins;
  }
  // The inserting thread is the unique "miss" for this key; call_once
  // makes it the unique solver too, so the miss count equals the number
  // of distinct canonical equations regardless of thread schedule.
  if (Inserted) {
    Misses.fetch_add(1, std::memory_order_relaxed);
  } else {
    Hits.fetch_add(1, std::memory_order_relaxed);
    // FromDisk is written once under the map mutex before the entry is
    // published; hits on such entries were solved in a previous process.
    if (E->FromDisk)
      DiskHits.fetch_add(1, std::memory_order_relaxed);
  }
  std::call_once(E->Once, [&] { E->Result = SolveFn(C->R); });

  SolveResult Result = E->Result;
  for (const auto &[Canon, Orig] : C->RenameBack) {
    Result.Closed = substituteVar(Result.Closed, Canon, makeVar(Orig));
    if (Result.Lo)
      Result.Lo = substituteVar(Result.Lo, Canon, makeVar(Orig));
  }
  if (Out)
    *Out = Inserted ? Outcome::Miss
                    : (E->FromDisk ? Outcome::DiskHit : Outcome::Hit);
  return Result;
}

size_t SolverCache::entries() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Map.size();
}

void SolverCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Map.clear();
  Hits.store(0, std::memory_order_relaxed);
  Misses.store(0, std::memory_order_relaxed);
  DiskHits.store(0, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Persistent on-disk cache
//
// The file serializes exactly what canonicalize() produces (the single
// canonicalizer — see the header), so a warm process rebuilds keys that
// intern to the same nodes a fresh canonicalization would: the normalizing
// expression factories are idempotent on their own output.
//===----------------------------------------------------------------------===//

namespace {

void writeRational(JsonWriter &W, const char *NKey, const char *DKey,
                   const Rational &V) {
  W.key(NKey);
  W.value(V.numerator());
  W.key(DKey);
  W.value(V.denominator());
}

/// Reads the rational stored under \p NKey / \p DKey; false when absent or
/// the denominator is zero (Rational asserts on 0 — never trust the file).
bool readRational(const JsonValue &O, const char *NKey, const char *DKey,
                  Rational &Out) {
  std::optional<int64_t> N = O.intMember(NKey);
  std::optional<int64_t> D = O.intMember(DKey);
  if (!N || !D || *D == 0)
    return false;
  Out = Rational(*N, *D);
  return true;
}

/// Expressions as tagged structural trees: {"k":"num","n":..,"d":..},
/// {"k":"var","v":..}, {"k":"inf"}, {"k":"call","v":..,"ops":[..]}, and
/// {"k":<add|mul|pow|log2|max|min>,"ops":[..]}.
void writeExpr(JsonWriter &W, const ExprRef &E) {
  W.beginObject();
  W.key("k");
  switch (E->kind()) {
  case ExprKind::Number:
    W.value("num");
    writeRational(W, "n", "d", E->number());
    break;
  case ExprKind::Var:
    W.value("var");
    W.key("v");
    W.value(E->name());
    break;
  case ExprKind::Infinity:
    W.value("inf");
    break;
  case ExprKind::Call:
    W.value("call");
    W.key("v");
    W.value(E->name());
    W.key("ops");
    W.beginArray();
    for (const ExprRef &Op : E->operands())
      writeExpr(W, Op);
    W.endArray();
    break;
  case ExprKind::Add:
  case ExprKind::Mul:
  case ExprKind::Pow:
  case ExprKind::Log2:
  case ExprKind::Max:
  case ExprKind::Min: {
    const char *Tag = E->kind() == ExprKind::Add   ? "add"
                      : E->kind() == ExprKind::Mul ? "mul"
                      : E->kind() == ExprKind::Pow ? "pow"
                      : E->kind() == ExprKind::Log2
                          ? "log2"
                          : E->kind() == ExprKind::Max ? "max" : "min";
    W.value(Tag);
    W.key("ops");
    W.beginArray();
    for (const ExprRef &Op : E->operands())
      writeExpr(W, Op);
    W.endArray();
    break;
  }
  }
  W.endObject();
}

/// Rebuilds an expression bottom-up through the normalizing factories;
/// null on any structural mismatch.  Recursion depth is bounded by
/// jsonParse's 256-level nesting limit.
ExprRef readExpr(const JsonValue &V) {
  if (!V.isObject())
    return nullptr;
  std::optional<std::string> K = V.stringMember("k");
  if (!K)
    return nullptr;
  if (*K == "num") {
    Rational R;
    if (!readRational(V, "n", "d", R))
      return nullptr;
    return makeNumber(R);
  }
  if (*K == "var") {
    std::optional<std::string> Name = V.stringMember("v");
    return Name ? makeVar(*Name) : nullptr;
  }
  if (*K == "inf")
    return makeInfinity();

  const JsonValue *OpsV = V.find("ops");
  if (!OpsV || !OpsV->isArray())
    return nullptr;
  std::vector<ExprRef> Ops;
  Ops.reserve(OpsV->array().size());
  for (const JsonValue &OpV : OpsV->array()) {
    ExprRef Op = readExpr(OpV);
    if (!Op)
      return nullptr;
    Ops.push_back(std::move(Op));
  }
  if (*K == "call") {
    std::optional<std::string> Name = V.stringMember("v");
    return Name ? makeCall(*Name, std::move(Ops)) : nullptr;
  }
  if (*K == "add")
    return makeAdd(std::move(Ops));
  if (*K == "mul")
    return makeMul(std::move(Ops));
  if (*K == "max")
    return makeMax(std::move(Ops));
  if (*K == "min")
    return makeMin(std::move(Ops));
  if (*K == "pow")
    return Ops.size() == 2 ? makePow(Ops[0], Ops[1]) : nullptr;
  if (*K == "log2")
    return Ops.size() == 1 ? makeLog2(Ops[0]) : nullptr;
  return nullptr;
}

/// One cache entry (key + solved result) as a standalone JSON object.
std::string
serializeEntry(const SolverCache::CacheKey &Key, const SolveResult &R) {
  JsonWriter W;
  W.beginObject();
  W.key("sig");
  W.value(Key.TableSignature);
  W.key("shift");
  W.beginArray();
  for (const ShiftTerm &T : Key.ShiftTerms) {
    W.beginObject();
    writeRational(W, "cn", "cd", T.Coeff);
    writeRational(W, "sn", "sd", T.Shift);
    W.endObject();
  }
  W.endArray();
  W.key("divide");
  W.beginArray();
  for (const DivideTerm &T : Key.DivideTerms) {
    W.beginObject();
    writeRational(W, "cn", "cd", T.Coeff);
    writeRational(W, "dn", "dd", T.Divisor);
    writeRational(W, "on", "od", T.Offset);
    W.endObject();
  }
  W.endArray();
  W.key("additive");
  writeExpr(W, Key.Additive);
  W.key("boundaries");
  W.beginArray();
  for (const Boundary &B : Key.Boundaries) {
    W.beginObject();
    writeRational(W, "an", "ad", B.At);
    W.key("value");
    writeExpr(W, B.Value);
    W.endObject();
  }
  W.endArray();
  W.key("result");
  W.beginObject();
  W.key("closed");
  writeExpr(W, R.Closed);
  W.key("lo");
  writeExpr(W, R.Lo ? R.Lo : makeNumber(0));
  W.key("schema");
  W.value(R.SchemaName);
  W.key("exact");
  W.value(R.Exact);
  W.key("why");
  W.value(R.Why);
  W.endObject();
  W.endObject();
  return W.take();
}

/// Parses one entry object; false on any structural problem.
bool parseEntry(const JsonValue &V, SolverCache::CacheKey &Key,
                SolveResult &R) {
  if (!V.isObject())
    return false;
  std::optional<std::string> Sig = V.stringMember("sig");
  if (!Sig)
    return false;
  Key.TableSignature = std::move(*Sig);

  const JsonValue *Shift = V.find("shift");
  if (!Shift || !Shift->isArray())
    return false;
  for (const JsonValue &TV : Shift->array()) {
    ShiftTerm T;
    if (!TV.isObject() || !readRational(TV, "cn", "cd", T.Coeff) ||
        !readRational(TV, "sn", "sd", T.Shift))
      return false;
    Key.ShiftTerms.push_back(T);
  }
  const JsonValue *Divide = V.find("divide");
  if (!Divide || !Divide->isArray())
    return false;
  for (const JsonValue &TV : Divide->array()) {
    DivideTerm T;
    if (!TV.isObject() || !readRational(TV, "cn", "cd", T.Coeff) ||
        !readRational(TV, "dn", "dd", T.Divisor) ||
        !readRational(TV, "on", "od", T.Offset))
      return false;
    Key.DivideTerms.push_back(T);
  }

  const JsonValue *Additive = V.find("additive");
  if (!Additive || !(Key.Additive = readExpr(*Additive)))
    return false;

  const JsonValue *Bounds = V.find("boundaries");
  if (!Bounds || !Bounds->isArray())
    return false;
  for (const JsonValue &BV : Bounds->array()) {
    Boundary B;
    if (!BV.isObject() || !readRational(BV, "an", "ad", B.At))
      return false;
    const JsonValue *Val = BV.find("value");
    if (!Val || !(B.Value = readExpr(*Val)))
      return false;
    Key.Boundaries.push_back(std::move(B));
  }

  const JsonValue *Res = V.find("result");
  if (!Res || !Res->isObject())
    return false;
  const JsonValue *Closed = Res->find("closed");
  if (!Closed || !(R.Closed = readExpr(*Closed)))
    return false;
  const JsonValue *Lo = Res->find("lo");
  if (!Lo || !(R.Lo = readExpr(*Lo)))
    return false; // mandatory since DiskFormatVersion 2
  std::optional<std::string> Schema = Res->stringMember("schema");
  std::optional<bool> Exact = Res->boolMember("exact");
  std::optional<std::string> Why = Res->stringMember("why");
  if (!Schema || !Exact || !Why)
    return false;
  R.SchemaName = std::move(*Schema);
  R.Exact = *Exact;
  R.Why = std::move(*Why);
  R.Degraded = false; // degraded results are never written
  return true;
}

} // namespace

bool SolverCache::loadFromFile(const std::string &Path, std::string *Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In.is_open())
    return true; // no file yet: first run, empty cache

  std::string Text{std::istreambuf_iterator<char>(In),
                   std::istreambuf_iterator<char>()};
  auto Fail = [&](const std::string &Why) {
    if (Error)
      *Error = Path + ": " + Why + "; starting with a fresh cache";
    return false;
  };

  std::optional<JsonValue> Doc = jsonParse(Text);
  if (!Doc || !Doc->isObject())
    return Fail("not a valid JSON object (corrupt cache file)");
  std::optional<int64_t> Version = Doc->intMember("version");
  if (!Version)
    return Fail("missing format version (corrupt cache file)");
  if (*Version != DiskFormatVersion)
    return Fail("format version " + std::to_string(*Version) +
                " (this build reads version " +
                std::to_string(DiskFormatVersion) + ")");
  const JsonValue *Entries = Doc->find("entries");
  if (!Entries || !Entries->isArray())
    return Fail("missing entries array (corrupt cache file)");

  // Parse everything before committing anything: a corrupt tail must not
  // leave a half-loaded cache behind the diagnostic.
  std::vector<std::pair<CacheKey, SolveResult>> Loaded;
  Loaded.reserve(Entries->array().size());
  for (const JsonValue &EV : Entries->array()) {
    CacheKey Key;
    SolveResult R;
    if (!parseEntry(EV, Key, R))
      return Fail("malformed entry " + std::to_string(Loaded.size()) +
                  " (corrupt cache file)");
    Loaded.emplace_back(std::move(Key), std::move(R));
  }

  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &[Key, R] : Loaded) {
    auto [It, Inserted] = Map.try_emplace(std::move(Key), nullptr);
    if (!Inserted)
      continue; // live entry wins over the disk copy
    auto E = std::make_shared<Entry>();
    E->Result = std::move(R);
    E->FromDisk = true;
    // Mark the entry solved so solve() never re-runs SolveFn for it.
    std::call_once(E->Once, [] {});
    It->second = std::move(E);
  }
  return true;
}

bool SolverCache::saveToFile(const std::string &Path,
                             std::string *Error) const {
  // Read-merge-write: another process may have flushed its own entries to
  // Path since this cache was loaded (shard workers share one cache
  // directory).  Re-parse the file and keep every disk entry whose key is
  // not live here — live wins on collision, matching loadFromFile — so
  // concurrent writers converge on the union of their work instead of the
  // last writer's view.  A corrupt or version-mismatched file contributes
  // nothing and is simply replaced.
  std::vector<std::pair<CacheKey, SolveResult>> DiskEntries;
  {
    std::ifstream In(Path, std::ios::binary);
    if (In.is_open()) {
      std::string Text{std::istreambuf_iterator<char>(In),
                       std::istreambuf_iterator<char>()};
      std::optional<JsonValue> Doc = jsonParse(Text);
      if (Doc && Doc->isObject() &&
          Doc->intMember("version") == int64_t{DiskFormatVersion}) {
        const JsonValue *Entries = Doc->find("entries");
        if (Entries && Entries->isArray()) {
          for (const JsonValue &EV : Entries->array()) {
            CacheKey Key;
            SolveResult R;
            if (parseEntry(EV, Key, R))
              DiskEntries.emplace_back(std::move(Key), std::move(R));
          }
        }
      }
    }
  }

  // Serialize each entry standalone, then sort the fragments: unordered_map
  // iteration order must not leak into the file bytes.
  std::vector<std::string> Fragments;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Fragments.reserve(Map.size() + DiskEntries.size());
    for (const auto &[Key, E] : Map) {
      if (!E || !E->Result.Closed)
        continue; // never solved (entry raced with shutdown)
      if (E->Result.Degraded)
        continue; // reflects a budget, not the equation
      Fragments.push_back(serializeEntry(Key, E->Result));
    }
    for (const auto &[Key, R] : DiskEntries)
      if (!Map.count(Key))
        Fragments.push_back(serializeEntry(Key, R));
  }
  std::sort(Fragments.begin(), Fragments.end());
  Fragments.erase(std::unique(Fragments.begin(), Fragments.end()),
                  Fragments.end());

  std::string Doc = "{\"version\":" + std::to_string(DiskFormatVersion) +
                    ",\"entries\":[";
  for (size_t I = 0; I != Fragments.size(); ++I) {
    if (I)
      Doc += ',';
    Doc += Fragments[I];
  }
  Doc += "]}";

  return writeFileAtomic(Path, Doc, Error);
}
