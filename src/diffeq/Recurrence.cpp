//===- diffeq/Recurrence.cpp ----------------------------------------------===//

#include "diffeq/Recurrence.h"

#include "support/Budget.h"

using namespace granlog;

std::string Recurrence::str() const {
  std::string Out = Function + "(" + Var + ") = ";
  bool First = true;
  for (const ShiftTerm &T : ShiftTerms) {
    if (!First)
      Out += " + ";
    First = false;
    if (!T.Coeff.isOne())
      Out += T.Coeff.str() + "*";
    Out += Function + "(" + Var + " - " + T.Shift.str() + ")";
  }
  for (const DivideTerm &T : DivideTerms) {
    if (!First)
      Out += " + ";
    First = false;
    if (!T.Coeff.isOne())
      Out += T.Coeff.str() + "*";
    Out += Function + "(" + Var + "/" + T.Divisor.str();
    if (!T.Offset.isZero())
      Out += " + " + T.Offset.str();
    Out += ")";
  }
  if (!Additive->isZero() || First) {
    if (!First)
      Out += " + ";
    Out += exprText(Additive);
  }
  for (const Boundary &B : Boundaries)
    Out += "; " + Function + "(" + B.At.str() + ") = " + exprText(B.Value);
  return Out;
}

namespace {

/// Rewrites max(...) nodes that contain calls to \p Function into sums.
/// For non-negative operands max(a, b) <= a + b, so this preserves the
/// upper-bound property while making the equation linear.
ExprRef relaxMaxOverCalls(const ExprRef &E, const std::string &Function) {
  if (E->operands().empty())
    return E;
  std::vector<ExprRef> Ops;
  Ops.reserve(E->operands().size());
  for (const ExprRef &Op : E->operands())
    Ops.push_back(relaxMaxOverCalls(Op, Function));
  switch (E->kind()) {
  case ExprKind::Max:
    if (containsCall(E, Function))
      return makeAdd(std::move(Ops));
    return makeMax(std::move(Ops));
  case ExprKind::Min:
    return makeMin(std::move(Ops));
  case ExprKind::Add:
    return makeAdd(std::move(Ops));
  case ExprKind::Mul:
    return makeMul(std::move(Ops));
  case ExprKind::Pow:
    return makePow(Ops[0], Ops[1]);
  case ExprKind::Log2:
    return makeLog2(Ops[0]);
  case ExprKind::Call:
    return makeCall(E->name(), std::move(Ops));
  default:
    return E;
  }
}

/// Classifies a self-call argument: returns a shift k (Var - k) or a
/// divisor b (Var / b).
struct ArgShape {
  bool IsShift = false;
  Rational Amount;               ///< shift k or divisor b
  Rational Offset = Rational(0); ///< divide only: constant in [0, 1]
};

std::optional<ArgShape> classifyRecArg(const ExprRef &Arg,
                                       const std::string &Var) {
  std::optional<std::vector<ExprRef>> Poly = polynomialIn(Arg, Var);
  if (!Poly || Poly->size() != 2)
    return std::nullopt;
  const ExprRef &C0 = (*Poly)[0];
  const ExprRef &C1 = (*Poly)[1];
  if (!C1->isNumber())
    return std::nullopt;
  Rational Slope = C1->number();
  if (Slope == Rational(1)) {
    // Var - k
    if (!C0->isNumber())
      return std::nullopt;
    Rational K = -C0->number();
    if (K <= Rational(0))
      return std::nullopt;
    return ArgShape{true, K};
  }
  // (1/b) * Var + c for a small non-negative constant c (at most 1, as
  // produced by even/odd list splitting where |half| = n/2 + 1/2).  The
  // offset is recorded; the solver compensates by the change of variable
  // F(n) = f(n + c*b/(b-1)), which satisfies the offset-free recurrence
  // with the additive part evaluated at n + c*b/(b-1).
  if (Slope <= Rational(0) || Slope >= Rational(1))
    return std::nullopt;
  if (!C0->isNumber() || C0->number().isNegative() ||
      C0->number() > Rational(1))
    return std::nullopt;
  return ArgShape{false, Rational(1) / Slope, C0->number()};
}

} // namespace

std::optional<Recurrence>
granlog::extractRecurrence(const std::string &Function,
                           const std::vector<std::string> &Params,
                           unsigned RecIndex, const ExprRef &Rhs) {
  assert(RecIndex < Params.size() && "bad recursion argument index");
  Recurrence R;
  R.Function = Function;
  R.Var = Params[RecIndex];
  R.Additive = makeNumber(0);

  ExprRef E = relaxMaxOverCalls(Rhs, Function);

  // Walk the (canonical) sum structure.
  std::vector<ExprRef> Addends;
  if (E->kind() == ExprKind::Add)
    Addends = E->operands();
  else
    Addends.push_back(E);

  std::vector<ExprRef> AdditiveParts;
  for (const ExprRef &Addend : Addends) {
    if (!containsCall(Addend, Function)) {
      AdditiveParts.push_back(Addend);
      continue;
    }
    // Must be K * Function(args).
    Rational K(1);
    ExprRef Base = Addend;
    if (Addend->kind() == ExprKind::Mul) {
      ExprSpan Ops = Addend->operands();
      if (Ops.size() != 2 || !Ops[0]->isNumber() ||
          Ops[1]->kind() != ExprKind::Call)
        return std::nullopt;
      K = Ops[0]->number();
      Base = Ops[1];
    }
    if (Base->kind() != ExprKind::Call || Base->name() != Function)
      return std::nullopt;
    if (K <= Rational(0))
      return std::nullopt;
    ExprSpan Args = Base->operands();
    if (Args.size() != Params.size())
      return std::nullopt;
    // Check the non-recursion parameters pass through unchanged (or are
    // call-free constants, which is equally harmless for the 1-variable
    // equation).
    for (unsigned I = 0; I != Args.size(); ++I) {
      if (I == RecIndex)
        continue;
      if (Args[I]->isVar() && Args[I]->name() == Params[I])
        continue;
      // A fully constant argument (no variables at all) is also fine: it
      // stays fixed across unfoldings.
      bool HasVar = false;
      for (const std::string &P : Params)
        HasVar |= containsVar(Args[I], P);
      if (!HasVar && !containsAnyCall(Args[I]))
        continue;
      // A parameter that only *shrinks* along the recursion (e.g. two
      // lists consumed in lockstep: f(n1-1, n2-1)) may be frozen at its
      // initial value: by the monotonicity assumption of Section 6 this
      // only increases the bound.
      if (!containsAnyCall(Args[I])) {
        std::optional<std::vector<ExprRef>> Poly =
            polynomialIn(Args[I], Params[I]);
        if (Poly && Poly->size() == 2 && (*Poly)[0]->isNumber() &&
            (*Poly)[1]->isNumber()) {
          Rational C0 = (*Poly)[0]->number();
          Rational C1 = (*Poly)[1]->number();
          if (C1 > Rational(0) && C1 <= Rational(1) && C0 <= Rational(0))
            continue;
        }
      }
      return std::nullopt;
    }
    std::optional<ArgShape> Shape = classifyRecArg(Args[RecIndex], R.Var);
    if (!Shape)
      return std::nullopt;
    if (Shape->IsShift) {
      bool Merged = false;
      for (ShiftTerm &T : R.ShiftTerms)
        if (T.Shift == Shape->Amount) {
          T.Coeff += K;
          Merged = true;
          break;
        }
      if (!Merged)
        R.ShiftTerms.push_back({K, Shape->Amount});
    } else {
      bool Merged = false;
      for (DivideTerm &T : R.DivideTerms)
        if (T.Divisor == Shape->Amount) {
          T.Coeff += K;
          T.Offset = std::max(T.Offset, Shape->Offset);
          Merged = true;
          break;
        }
      if (!Merged)
        R.DivideTerms.push_back({K, Shape->Amount, Shape->Offset});
    }
  }
  R.Additive = makeAdd(std::move(AdditiveParts));
  if (containsCall(R.Additive, Function))
    return std::nullopt;
  return R;
}

ExprRef granlog::instantiateDef(const EquationDef &Def,
                                const std::vector<ExprRef> &Args) {
  if (Args.size() != Def.Params.size())
    return makeInfinity();
  ExprRef Body = Def.Rhs;
  // Rename parameters to fresh names first to avoid capture (an argument
  // expression may itself mention a name equal to a later parameter).
  std::vector<std::string> Fresh;
  for (size_t I = 0; I != Def.Params.size(); ++I) {
    Fresh.push_back("$tmp" + std::to_string(I));
    Body = substituteVar(Body, Def.Params[I], makeVar(Fresh[I]));
  }
  for (size_t I = 0; I != Args.size(); ++I)
    Body = substituteVar(Body, Fresh[I], Args[I]);
  return Body;
}

ExprRef granlog::inlineCalls(const ExprRef &E,
                             const std::map<std::string, EquationDef> &Defs,
                             unsigned Rounds) {
  ExprRef Current = E;
  for (unsigned Round = 0; Round != Rounds; ++Round) {
    // Budget checkpoint: substitution rounds are where mutually recursive
    // systems blow up (each round can multiply tree sizes).  Charge one
    // normalization step per definition, guard the intermediate's tree
    // size, and stop early once any meter is exhausted — the caller
    // checks the meter and degrades to Infinity with a budget Why.
    if (WorkMeter *M = currentWorkMeter()) {
      M->chargeNormalize(1 + Defs.size());
      M->noteTreeSize(Current->treeSize());
      if (M->over())
        return Current;
    }
    ExprRef Next = Current;
    for (const auto &[Name, Def] : Defs) {
      const EquationDef &D = Def;
      Next = substituteCall(
          Next, Name, [&](const std::vector<ExprRef> &Args) -> ExprRef {
            return instantiateDef(D, Args);
          });
    }
    if (Next == Current)
      break;
    Current = Next;
  }
  return Current;
}

Recurrence granlog::mergeRecurrences(const std::vector<Recurrence> &Rs,
                                     bool Sum) {
  assert(!Rs.empty() && "nothing to merge");
  Recurrence Merged;
  Merged.Function = Rs[0].Function;
  Merged.Var = Rs[0].Var;
  std::vector<ExprRef> Additives;
  for (const Recurrence &R : Rs) {
    assert(R.Function == Merged.Function && R.Var == Merged.Var &&
           "merging unrelated recurrences");
    for (const ShiftTerm &T : R.ShiftTerms) {
      bool Found = false;
      for (ShiftTerm &M : Merged.ShiftTerms)
        if (M.Shift == T.Shift) {
          M.Coeff = Sum ? M.Coeff + T.Coeff : std::max(M.Coeff, T.Coeff);
          Found = true;
          break;
        }
      if (!Found)
        Merged.ShiftTerms.push_back(T);
    }
    for (const DivideTerm &T : R.DivideTerms) {
      bool Found = false;
      for (DivideTerm &M : Merged.DivideTerms)
        if (M.Divisor == T.Divisor) {
          M.Coeff = Sum ? M.Coeff + T.Coeff : std::max(M.Coeff, T.Coeff);
          M.Offset = std::max(M.Offset, T.Offset);
          Found = true;
          break;
        }
      if (!Found)
        Merged.DivideTerms.push_back(T);
    }
    Additives.push_back(R.Additive);
    for (const Boundary &B : R.Boundaries)
      Merged.Boundaries.push_back(B);
  }
  Merged.Additive = Sum ? makeAdd(std::move(Additives))
                        : makeMax(std::move(Additives));
  return Merged;
}

Recurrence
granlog::mergeRecurrencesLower(const std::vector<Recurrence> &Rs) {
  assert(!Rs.empty() && "nothing to merge");
  Recurrence Merged;
  Merged.Function = Rs[0].Function;
  Merged.Var = Rs[0].Var;
  // A self term survives only if every clause has it (a clause without it
  // has coefficient 0, and min with 0 is 0); the survivor keeps the min
  // coefficient.  Start from the first clause's terms and intersect.
  Merged.ShiftTerms = Rs[0].ShiftTerms;
  Merged.DivideTerms = Rs[0].DivideTerms;
  for (size_t I = 1; I != Rs.size(); ++I) {
    const Recurrence &R = Rs[I];
    assert(R.Function == Merged.Function && R.Var == Merged.Var &&
           "merging unrelated recurrences");
    std::vector<ShiftTerm> KeptShift;
    for (const ShiftTerm &M : Merged.ShiftTerms)
      for (const ShiftTerm &T : R.ShiftTerms)
        if (M.Shift == T.Shift) {
          KeptShift.push_back({std::min(M.Coeff, T.Coeff), M.Shift});
          break;
        }
    Merged.ShiftTerms = std::move(KeptShift);
    std::vector<DivideTerm> KeptDivide;
    for (const DivideTerm &M : Merged.DivideTerms)
      for (const DivideTerm &T : R.DivideTerms)
        if (M.Divisor == T.Divisor) {
          // f(n/b + c) >= f(n/b) for monotone f and c >= 0, so the min
          // offset keeps the lower-bound property.
          KeptDivide.push_back({std::min(M.Coeff, T.Coeff), M.Divisor,
                                std::min(M.Offset, T.Offset)});
          break;
        }
    Merged.DivideTerms = std::move(KeptDivide);
  }
  std::vector<ExprRef> Additives;
  for (const Recurrence &R : Rs) {
    Additives.push_back(R.Additive);
    for (const Boundary &B : R.Boundaries)
      Merged.Boundaries.push_back(B);
  }
  Merged.Additive = makeMin(std::move(Additives));
  return Merged;
}

ExprRef granlog::lowerSelectOverCalls(const ExprRef &E,
                                      const std::string &Function) {
  if (E->operands().empty())
    return E;
  if (!containsCall(E, Function))
    return E;
  std::vector<ExprRef> Ops;
  Ops.reserve(E->operands().size());
  for (const ExprRef &Op : E->operands())
    Ops.push_back(lowerSelectOverCalls(Op, Function));
  switch (E->kind()) {
  case ExprKind::Max: {
    // max(a, b) >= a: keep the first call-containing operand (rewritten),
    // preserving the recursive structure.
    for (size_t I = 0; I != E->operands().size(); ++I)
      if (containsCall(E->operands()[I], Function))
        return Ops[I];
    return makeMax(std::move(Ops)); // unreachable: containsCall held
  }
  case ExprKind::Min:
    // min with a self-call has no linear lower form in f; 0 is the only
    // universally sound floor for a non-negative resource.
    return makeNumber(0);
  case ExprKind::Add:
    return makeAdd(std::move(Ops));
  case ExprKind::Mul:
    return makeMul(std::move(Ops));
  case ExprKind::Pow:
    return makePow(Ops[0], Ops[1]);
  case ExprKind::Log2:
    return makeLog2(Ops[0]);
  case ExprKind::Call:
    return makeCall(E->name(), std::move(Ops));
  default:
    return E;
  }
}
