//===- diffeq/Solver.h - Table-driven difference equation solving ---------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's "granularity analysis structure" (Definition 5.2): a domain
/// of difference equations R, an approximation set S of schemas with known
/// closed-form solutions, an approximation function alpha mapping each
/// equation to a schema whose solution upper-bounds it, and the solution
/// function soln.  Here each Schema implements both alpha (matches/
/// normalize) and soln (solve); the SolverTable tries schemas in order and
/// returns Infinity when none applies — such predicates are then always
/// executed in parallel ("sequentializing a parallel language", Section 5).
///
/// Every schema guarantees: if f satisfies the recurrence with the given
/// boundary conditions and f, g are monotone non-decreasing and
/// non-negative, then the returned closed form is >= f pointwise.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_DIFFEQ_SOLVER_H
#define GRANLOG_DIFFEQ_SOLVER_H

#include "diffeq/Recurrence.h"
#include "support/Stats.h"

#include <memory>
#include <string>
#include <vector>

namespace granlog {

class SolverCache;
class Tracer;

/// The result of solving one difference equation.
struct SolveResult {
  ExprRef Closed;         ///< closed form in Recurrence::Var; Infinity on failure
  std::string SchemaName; ///< which library schema produced it ("" = none)
  bool Exact = false;     ///< true when no upper-bound relaxation was applied
  /// Provenance: why the equation fell to Infinity (empty on success).
  /// Surfaces through GranularityAnalyzer::explain() so every Infinity
  /// classification can be audited.
  std::string Why;
  /// True when the solve was skipped because the scope's resource budget
  /// was exhausted (Closed is then Infinity and Why carries the meter).
  bool Degraded = false;
  /// Closed-form lower bound in Recurrence::Var, under the dual reading of
  /// the equation: any monotone non-decreasing, non-negative f with
  ///   f(n) >= Sum C_i f(n - k_i) + g(n)   for n above the base, and
  ///   f(At) >= Value                      for every boundary
  /// satisfies f >= Lo pointwise (over the measured domain, n >= base).
  /// Equals Closed when Exact (an exact solve of the lower recurrence IS
  /// its minimal solution); a weaker per-schema floor otherwise; the
  /// constant 0 when the schema has no useful dual or the solve failed.
  /// Never null after DiffEqSolver::solve().  Callers that built an
  /// *upper* recurrence must read Closed and ignore Lo; callers that
  /// built a *lower* recurrence read Lo — one cached entry serves both.
  ExprRef Lo;

  bool failed() const { return Closed->isInfinity(); }
};

/// One entry of the approximation set S: a recognizable equation shape with
/// a known closed-form (upper-bound) solution.
class Schema {
public:
  virtual ~Schema() = default;

  /// A short stable identifier, e.g. "first-order-sum".
  virtual const char *name() const = 0;

  /// Tries to solve \p R; nullopt when the shape does not match.
  virtual std::optional<SolveResult> apply(const Recurrence &R) const = 0;
};

/// The solver: an ordered schema table.
class DiffEqSolver {
public:
  /// Builds the default table (summation, geometric, divide-and-conquer).
  DiffEqSolver();
  ~DiffEqSolver();
  DiffEqSolver(DiffEqSolver &&) = default;
  DiffEqSolver &operator=(DiffEqSolver &&) = default;

  /// Solves \p R, returning Infinity ("always parallel") when no schema
  /// matches.  Multi-term equations are first collapsed to a single term
  /// using the monotonicity assumption of Section 6.  When a SolverCache
  /// is attached, structurally identical equations (up to variable names)
  /// are solved once and replayed; per-solve stats are recorded from the
  /// final result either way, so the counters are identical with and
  /// without a cache.
  SolveResult solve(const Recurrence &R) const;

  /// Removes the schema with the given name (for the ablation benchmark).
  void disableSchema(const std::string &Name);

  /// Names of the installed schemas, in match order.
  std::vector<std::string> schemaNames() const;

  /// Directs per-solve counters ("<prefix>.hit.<schema>",
  /// "<prefix>.infinity", "<prefix>.relaxed") to \p Stats.  Null disables
  /// recording (the default).
  void setStats(StatsRegistry *Stats, std::string Prefix) {
    this->Stats = Stats;
    StatsPrefix = std::move(Prefix);
  }

  /// Attaches a memo table shared across solver instances (and, in batch
  /// mode, across analyzer runs).  Null detaches (the default).
  void setCache(SolverCache *Cache) { this->Cache = Cache; }

  /// Emits one "solve" span per solve() (tagging budget degradation) and
  /// one "cache.probe" span per cache lookup (tagging hit/miss/disk-hit/
  /// bypass) into \p T.  Null disables tracing (the default); results
  /// are identical either way.
  void setTracer(Tracer *T) { this->Trace = T; }

  /// Comma-joined schema names in match order; namespaces cache keys so
  /// ablation configurations never share entries.
  std::string tableSignature() const;

private:
  /// The raw schema-table walk; no stats, no cache.
  SolveResult solveDirect(const Recurrence &R) const;

  std::vector<std::unique_ptr<Schema>> Schemas;
  StatsRegistry *Stats = nullptr;
  std::string StatsPrefix;
  SolverCache *Cache = nullptr;
  Tracer *Trace = nullptr;
};

/// \name Helpers shared by schemas and the analyses.
/// @{

/// Selects the base point (smallest boundary At) and a sound base value
/// (max over boundary values).  Returns false if there is no boundary —
/// the equation then describes a non-terminating computation and the
/// solver must fail (Infinity).
bool chooseBase(const Recurrence &R, Rational &BaseAt, ExprRef &BaseValue);

/// Collapses all self terms into a single shift term (A, K): A is the sum
/// of all coefficients, K the minimum shift.  Requires shift-only
/// equations.  Sound for monotone f:  sum C_i f(n-K_i) <= (sum C_i) f(n-K).
/// Sets \p WasExact when the equation already had exactly one term.
ShiftTerm collapseShiftTerms(const Recurrence &R, bool &WasExact);

/// Dual of chooseBase for lower bounds: selects the *largest* boundary At
/// and the *min* over boundary values, so that monotone f satisfies
/// f(n) >= BaseValue for all n >= BaseAt.  Returns false when there is no
/// boundary.
bool chooseBaseLower(const Recurrence &R, Rational &BaseAt,
                     ExprRef &BaseValue);

/// Dual of collapseShiftTerms: A is still the sum of all coefficients but
/// K is the *maximum* shift.  Sound for monotone f:
///   sum C_i f(n-K_i) >= (sum C_i) f(n-K_max).
ShiftTerm collapseShiftTermsLower(const Recurrence &R);

/// @}

} // namespace granlog

#endif // GRANLOG_DIFFEQ_SOLVER_H
