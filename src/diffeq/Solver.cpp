//===- diffeq/Solver.cpp - The schema library ------------------------------===//

#include "diffeq/Solver.h"

#include "diffeq/SolverCache.h"
#include "support/Budget.h"
#include "support/Tracer.h"

#include <cmath>

using namespace granlog;

bool granlog::chooseBase(const Recurrence &R, Rational &BaseAt,
                         ExprRef &BaseValue) {
  if (R.Boundaries.empty())
    return false;
  BaseAt = R.Boundaries[0].At;
  std::vector<ExprRef> Values;
  for (const Boundary &B : R.Boundaries) {
    BaseAt = std::min(BaseAt, B.At);
    Values.push_back(B.Value);
  }
  BaseValue = makeMax(std::move(Values));
  return true;
}

ShiftTerm granlog::collapseShiftTerms(const Recurrence &R, bool &WasExact) {
  assert(!R.ShiftTerms.empty() && R.DivideTerms.empty() &&
         "collapse requires shift-only equations");
  WasExact = R.ShiftTerms.size() == 1;
  ShiftTerm Result = R.ShiftTerms[0];
  for (size_t I = 1; I != R.ShiftTerms.size(); ++I) {
    Result.Coeff += R.ShiftTerms[I].Coeff;
    Result.Shift = std::min(Result.Shift, R.ShiftTerms[I].Shift);
  }
  return Result;
}

bool granlog::chooseBaseLower(const Recurrence &R, Rational &BaseAt,
                              ExprRef &BaseValue) {
  if (R.Boundaries.empty())
    return false;
  BaseAt = R.Boundaries[0].At;
  std::vector<ExprRef> Values;
  for (const Boundary &B : R.Boundaries) {
    BaseAt = std::max(BaseAt, B.At);
    Values.push_back(B.Value);
  }
  // An Infinity boundary value reads as f(At) >= Infinity — vacuously
  // strong under the >= reading — and makeMin drops it, which is exactly
  // the sound treatment here.
  BaseValue = makeMin(std::move(Values));
  return true;
}

ShiftTerm granlog::collapseShiftTermsLower(const Recurrence &R) {
  assert(!R.ShiftTerms.empty() && R.DivideTerms.empty() &&
         "collapse requires shift-only equations");
  ShiftTerm Result = R.ShiftTerms[0];
  for (size_t I = 1; I != R.ShiftTerms.size(); ++I) {
    Result.Coeff += R.ShiftTerms[I].Coeff;
    Result.Shift = std::max(Result.Shift, R.ShiftTerms[I].Shift);
  }
  return Result;
}

namespace {

/// Substitutes a rational constant for the recurrence variable.
ExprRef atPoint(const ExprRef &E, const std::string &Var, Rational At) {
  return substituteVar(E, Var, makeNumber(At));
}

/// A rational upper bound on log2(X) ... times 1: returns the smallest
/// rational with denominator 4096 that is >= Value.
Rational rationalCeil(double Value) {
  return Rational(static_cast<int64_t>(std::ceil(Value * 4096.0)), 4096);
}

/// Normalizes a schema's lower bound before returning: never null, never
/// Infinity.  An Infinity that survived into Lo means some ingredient was
/// unknown (poisoned), and the only universally sound floor for a
/// non-negative resource is 0.
void finishLo(SolveResult &Result) {
  if (!Result.Lo || Result.Lo->isInfinity())
    Result.Lo = makeNumber(0);
}

/// No self terms at all: f(n) = g(n), possibly refined by boundary values.
class ClosedSchema : public Schema {
public:
  const char *name() const override { return "closed"; }

  std::optional<SolveResult> apply(const Recurrence &R) const override {
    if (R.hasSelfTerms())
      return std::nullopt;
    std::vector<ExprRef> Parts{R.Additive};
    for (const Boundary &B : R.Boundaries)
      Parts.push_back(B.Value);
    // Folding boundary values in by max is a relaxation: the result is
    // only an upper bound once there is anything to fold.  The equation
    // is its own exact solution precisely when there are no boundaries.
    SolveResult Result{makeMax(std::vector<ExprRef>(Parts)), name(),
                       /*Exact=*/R.Boundaries.empty()};
    Result.Lo = Result.Exact ? Result.Closed : makeMin(std::move(Parts));
    finishLo(Result);
    return Result;
  }
};

/// f(n) = f(n-k) + g(n): first-order summation.
///
/// For k = 1 and polynomial g the solution is exact via Faulhaber:
///   f(n) = C + Sum_{j=b+1}^{n} g(j) = C + G(n) - G(b).
/// Otherwise the bound uses monotonicity of g: at most (n-b)/k + 1
/// unfoldings, each contributing at most g(n):
///   f(n) <= C + ((n-b)/k + 1) * g(n).
class FirstOrderSumSchema : public Schema {
public:
  const char *name() const override { return "first-order-sum"; }

  std::optional<SolveResult> apply(const Recurrence &R) const override {
    if (R.ShiftTerms.empty() || !R.DivideTerms.empty())
      return std::nullopt;
    bool WasExact = true;
    ShiftTerm T = collapseShiftTerms(R, WasExact);
    // Coefficient sums below one are rounded up to one (monotone f).
    if (T.Coeff > Rational(1))
      return std::nullopt;
    if (T.Coeff < Rational(1))
      WasExact = false;

    Rational BaseAt;
    ExprRef BaseValue;
    if (!chooseBase(R, BaseAt, BaseValue))
      return std::nullopt;
    WasExact &= R.Boundaries.size() == 1;

    // Dual ingredients for the lower reading: the *largest* boundary with
    // the *min* value, and the *max* shift.
    Rational LowAt;
    ExprRef LowValue;
    chooseBaseLower(R, LowAt, LowValue);
    ShiftTerm TL = collapseShiftTermsLower(R);

    if (T.Shift == Rational(1)) {
      std::optional<std::vector<ExprRef>> Poly =
          polynomialIn(R.Additive, R.Var);
      if (Poly) {
        ExprRef G = sumPolynomial(*Poly, R.Var);
        ExprRef Closed = makeAdd(
            {BaseValue, G,
             makeScale(Rational(-1), atPoint(G, R.Var, BaseAt))});
        SolveResult Result{Closed, name(), WasExact};
        if (WasExact)
          // An exact solve is its own minimal solution: Lo == Hi.
          Result.Lo = Closed;
        else if (T.Coeff == Rational(1) && TL.Shift == Rational(1))
          // Coefficient sum 1 with every shift <= 1 reads as
          // f(n) >= f(n-1) + g(n), so the Faulhaber sum unrolled down to
          // the largest boundary is a sound lower bound too.
          Result.Lo = makeAdd(
              {LowValue, G,
               makeScale(Rational(-1), atPoint(G, R.Var, LowAt))});
        else
          // Monotone f never drops below its latest base value.
          Result.Lo = LowValue;
        finishLo(Result);
        return Result;
      }
    }
    // General monotone bound.
    ExprRef Steps = makeAdd(
        makeScale(Rational(1) / T.Shift,
                  makeSub(makeVar(R.Var), makeNumber(BaseAt))),
        makeNumber(1));
    ExprRef Closed = makeAdd(BaseValue, makeMul(Steps, R.Additive));
    SolveResult Result{Closed, name(), /*Exact=*/false};
    // Lower reading: monotone f stays >= LowValue past the base, and with
    // coefficient sum 1 each of the >= (n - LowAt)/K_max - 1 guaranteed
    // unfoldings contributes at least g(LowAt) when that evaluates to a
    // known non-negative constant.
    Result.Lo = LowValue;
    if (T.Coeff == Rational(1)) {
      ExprRef GBase = atPoint(R.Additive, R.Var, LowAt);
      if (GBase->isNumber() && !(GBase->number() < Rational(0))) {
        ExprRef StepsLow = makeAdd(
            makeScale(Rational(1) / TL.Shift,
                      makeSub(makeVar(R.Var), makeNumber(LowAt))),
            makeNumber(-1));
        Result.Lo = makeAdd(LowValue, makeMul(StepsLow, GBase));
      }
    }
    finishLo(Result);
    return Result;
  }
};

/// f(n) = A f(n-k) + g(n) with A > 1: geometric growth.
///
/// Constant g = B (paper's library schema):
///   f(n) = (C + B/(A-1)) * A^((n-b)/k) - B/(A-1)            [exact]
/// Monotone non-constant g:
///   f(n) = A^m C + Sum_{j<m} A^j g(n - jk)
///        <= A^m (C + g(n)/(A-1))    with m = (n-b)/k.
class GeometricSchema : public Schema {
public:
  const char *name() const override { return "geometric"; }

  std::optional<SolveResult> apply(const Recurrence &R) const override {
    if (R.ShiftTerms.empty() || !R.DivideTerms.empty())
      return std::nullopt;
    bool WasExact = true;
    ShiftTerm T = collapseShiftTerms(R, WasExact);
    if (T.Coeff <= Rational(1))
      return std::nullopt;

    Rational BaseAt;
    ExprRef BaseValue;
    if (!chooseBase(R, BaseAt, BaseValue))
      return std::nullopt;
    WasExact &= R.Boundaries.size() == 1;

    Rational A = T.Coeff;
    ExprRef Exponent = makeScale(Rational(1) / T.Shift,
                                 makeSub(makeVar(R.Var), makeNumber(BaseAt)));
    ExprRef Growth = makePow(makeNumber(A), Exponent);
    Rational InvAm1 = Rational(1) / (A - Rational(1));

    // Lower reading: f(n) >= A f(n - K_max) + g(n) >= A f(n - K_max)
    // (g non-negative), and unrolling floor((n - LowAt)/K_max) >=
    // (n - LowAt)/K_max - 1 times over the largest boundary gives
    //   f(n) >= LowValue * A^((n - LowAt)/K_max) / A.
    auto lowerFloor = [&](const Recurrence &R) {
      Rational LowAt;
      ExprRef LowValue;
      chooseBaseLower(R, LowAt, LowValue);
      ShiftTerm TL = collapseShiftTermsLower(R);
      ExprRef ExpLow =
          makeScale(Rational(1) / TL.Shift,
                    makeSub(makeVar(R.Var), makeNumber(LowAt)));
      return makeScale(Rational(1) / A,
                       makeMul(LowValue, makePow(makeNumber(A), ExpLow)));
    };

    if (!containsVar(R.Additive, R.Var)) {
      // Constant additive part: exact closed form.
      ExprRef BOver = makeScale(InvAm1, R.Additive);
      ExprRef Closed =
          makeAdd(makeMul(makeAdd(BaseValue, BOver), Growth),
                  makeScale(Rational(-1), BOver));
      SolveResult Result{Closed, name(), WasExact};
      Result.Lo = WasExact ? Closed : lowerFloor(R);
      finishLo(Result);
      return Result;
    }
    ExprRef Closed = makeMul(
        makeAdd(BaseValue, makeScale(InvAm1, R.Additive)), Growth);
    SolveResult Result{Closed, name(), /*Exact=*/false};
    Result.Lo = lowerFloor(R);
    finishLo(Result);
    return Result;
  }
};

/// f(n) = a f(n/b) + g(n) with b > 1: divide and conquer.
///
/// Unrolling gives f(n) <= Sum_{j<L} a^j g(n/b^j) + a^L f(base) with
/// L = log_b n levels.  For polynomial g each monomial c_i n^i is summed
/// separately — its level sum is a geometric series with ratio r = a/b^i,
/// and bounding the whole polynomial by the leading monomial's ratio (as
/// a textbook master-theorem statement does for Theta) undercounts the
/// lower-order monomials whose ratio exceeds it: in
/// f(n) = 2 f(n/2) + (n/2 + 2) the "+2" really contributes 2n - 2, not
/// 2 log2 n.  With c = log_b a (rounded up to a rational):
///   a == b^i:  c_i n^i contributes c_i n^i * (log2(n)/log2(b) + 1)
///   a <  b^i:  c_i n^i * b^i/(b^i - a)
///   a >  b^i:  c_i n^c * b^i/(a - b^i)       [the series is leaf-heavy]
/// plus f(base) * n^c for the homogeneous part.  For non-polynomial
/// monotone g:
///   a == 1:    f(n) <= g(n) * (log2(n)/log2(b) + 1) + C
///   a >  1:    f(n) <= (C + g(n) a/(a-1)) * n^c
class DivideConquerSchema : public Schema {
public:
  const char *name() const override { return "divide-and-conquer"; }

  std::optional<SolveResult> apply(const Recurrence &R) const override {
    if (R.DivideTerms.empty() || !R.ShiftTerms.empty())
      return std::nullopt;
    Rational A = R.DivideTerms[0].Coeff;
    Rational B = R.DivideTerms[0].Divisor;
    Rational MaxOffset = R.DivideTerms[0].Offset;
    for (size_t I = 1; I != R.DivideTerms.size(); ++I) {
      A += R.DivideTerms[I].Coeff;
      B = std::min(B, R.DivideTerms[I].Divisor);
      MaxOffset = std::max(MaxOffset, R.DivideTerms[I].Offset);
    }
    if (A < Rational(1) || B <= Rational(1))
      return std::nullopt;

    Rational BaseAt;
    ExprRef BaseValue;
    if (!chooseBase(R, BaseAt, BaseValue))
      return std::nullopt;

    // Lower reading: the library's divide-and-conquer forms are all
    // relaxed, so the dual falls back to the monotone floor — f never
    // drops below the min value of its largest boundary.
    Rational LowAt;
    ExprRef LowValue;
    chooseBaseLower(R, LowAt, LowValue);

    ExprRef N = makeVar(R.Var);
    // Recursive arguments of the form n/b + c (c > 0, from e.g. even/odd
    // list splitting) are handled by the change of variable
    //   F(n) := f(n + c*b/(b-1)),
    // which satisfies the offset-free recurrence
    //   F(n) = a F(n/b) + g(n + c*b/(b-1)),
    // and f(n) <= F(n) by monotonicity.  So: shift the additive part and
    // allow one extra recursion level below.
    ExprRef Additive = R.Additive;
    int64_t ExtraLevel = 0;
    if (MaxOffset > Rational(0)) {
      Rational Shift = MaxOffset * B / (B - Rational(1));
      Additive =
          substituteVar(Additive, R.Var, makeAdd(N, makeNumber(Shift)));
      ExtraLevel = 1;
    }
    // log2(n)/log2(b) + 1 levels (+1 when offset-shifted).
    Rational InvLog2B = rationalCeil(1.0 / std::log2(B.asDouble()));
    ExprRef Levels = makeAdd(makeScale(InvLog2B, makeLog2(N)),
                             makeNumber(1 + ExtraLevel));

    std::optional<std::vector<ExprRef>> Poly = polynomialIn(Additive, R.Var);
    if (Poly) {
      Rational C =
          rationalCeil(std::log(A.asDouble()) / std::log(B.asDouble()));
      ExprRef NPowC = makePow(N, makeNumber(C));
      std::vector<ExprRef> Terms;
      for (size_t I = 0; I != Poly->size(); ++I) {
        ExprRef Ci = (*Poly)[I];
        if (Ci->isNumber()) {
          if (Ci->number() == Rational(0))
            continue;
          // A negative monomial's level sum is negative; dropping it
          // keeps the bound an upper bound.
          if (Ci->number() < Rational(0))
            continue;
        }
        Rational BPowI = B.pow(static_cast<int64_t>(I));
        ExprRef NPowI = makePow(N, makeNumber(static_cast<int64_t>(I)));
        if (A == BPowI) {
          // Ratio 1: every level contributes c_i n^i.
          Terms.push_back(makeMul({Ci, NPowI, Levels}));
        } else if (A < BPowI) {
          // Ratio < 1: the root level dominates the geometric series.
          Rational Factor = BPowI / (BPowI - A);
          Terms.push_back(makeScale(Factor, makeMul(Ci, NPowI)));
        } else {
          // Ratio r = a/b^i > 1: the leaves dominate;
          //   c_i n^i Sum_{j<L+e} r^j <= c_i n^i r^L r^e / (r-1)
          // and n^i r^L = n^{log_b a} <= n^c.
          Rational Factor = BPowI / (A - BPowI);
          if (ExtraLevel)
            Factor = Factor * A / BPowI;
          Terms.push_back(makeScale(Factor, makeMul(Ci, NPowC)));
        }
      }
      // Homogeneous part: a^{L+e} f(base) <= f(base) a^e n^c — plus one
      // extra f(base), because below the base case f(n) *is* the boundary
      // value while every power of n vanishes at 0.  (1 + n^c) keeps the
      // closed form polynomial when c is integral, so callers composing
      // this cost into an outer recurrence still take the tight
      // polynomial path; max(n,1)^c would not.
      ExprRef Base =
          makeMul(BaseValue, makeAdd(makeNumber(1), NPowC));
      if (ExtraLevel)
        Base = makeScale(A, Base);
      Terms.push_back(Base);
      SolveResult Result{makeAdd(std::move(Terms)), name(), /*Exact=*/false};
      Result.Lo = LowValue;
      finishLo(Result);
      return Result;
    }
    // a > b^d, or non-polynomial g.
    if (A == Rational(1)) {
      ExprRef Closed = makeAdd(makeMul(Additive, Levels), BaseValue);
      SolveResult Result{Closed, name(), /*Exact=*/false};
      Result.Lo = LowValue;
      finishLo(Result);
      return Result;
    }
    Rational C =
        rationalCeil(std::log(A.asDouble()) / std::log(B.asDouble()));
    ExprRef NPowC = makePow(N, makeNumber(C));
    Rational AOverAm1 = A / (A - Rational(1));
    ExprRef Extra = ExtraLevel ? makeNumber(A) : makeNumber(1);
    ExprRef Closed = makeMul(
        {makeAdd(BaseValue, makeScale(AOverAm1, Additive)), NPowC, Extra});
    SolveResult Result{Closed, name(), /*Exact=*/false};
    Result.Lo = LowValue;
    finishLo(Result);
    return Result;
  }
};

} // namespace

DiffEqSolver::DiffEqSolver() {
  Schemas.push_back(std::make_unique<ClosedSchema>());
  Schemas.push_back(std::make_unique<FirstOrderSumSchema>());
  Schemas.push_back(std::make_unique<GeometricSchema>());
  Schemas.push_back(std::make_unique<DivideConquerSchema>());
}

DiffEqSolver::~DiffEqSolver() = default;

SolveResult DiffEqSolver::solve(const Recurrence &R) const {
  TraceSpan Solve(Trace, SpanKind::Solve);
  SolveResult Result;
  if (WorkMeter *M = currentWorkMeter()) {
    // Deterministic budget gate, checked BEFORE the cache: once the
    // scope's meters are exhausted every further solve degrades to
    // Infinity (a sound upper bound, paper Section 5) without touching
    // the cache, so no degraded result is ever memoized and the charge
    // below is identical whether a cache entry exists or not.
    if (std::optional<MeterKind> K = M->over()) {
      Result = SolveResult{makeInfinity(), std::string(), /*Exact=*/false,
                           budgetWhy(*M->budget(), *K)};
      Result.Degraded = true;
      Result.Lo = makeNumber(0);
      Solve.setDetail(TraceSolveDegraded);
      statsAdd(Stats, StatsPrefix + ".budget_degraded");
    } else {
      // Charge by the equation's shape — uniform for hit and miss.
      M->chargeSolver(1 + R.ShiftTerms.size() + R.DivideTerms.size() +
                      R.Boundaries.size());
    }
  }
  if (!Result.Closed) {
    // Suspend metering while solving: with a shared cache, which caller
    // replays a memoized entry (cheap) vs. computes it (expensive) is
    // schedule-dependent, and that variance must not leak into the
    // deterministic charges.
    MeterScope Suspend(nullptr);
    if (Cache) {
      TraceSpan Probe(Trace, SpanKind::CacheProbe);
      SolverCache::Outcome Out;
      Result = Cache->solve(R, tableSignature(),
                            [this](const Recurrence &C) {
                              return solveDirect(C);
                            },
                            &Out);
      switch (Out) {
      case SolverCache::Outcome::Hit:
        Probe.setDetail(TraceCacheHit);
        break;
      case SolverCache::Outcome::Miss:
        Probe.setDetail(TraceCacheMiss);
        break;
      case SolverCache::Outcome::DiskHit:
        Probe.setDetail(TraceCacheDiskHit);
        break;
      case SolverCache::Outcome::Bypass:
        Probe.setDetail(TraceCacheBypass);
        break;
      }
    } else {
      Result = solveDirect(R);
    }
  }
  // Record stats from the final result, not inside solveDirect: a cache
  // hit must bump the same counters as the solve it replays, so the stats
  // are identical cache-on and cache-off.
  if (statsActive(Stats)) {
    statsAdd(Stats, StatsPrefix + ".solve");
    if (!Result.SchemaName.empty()) {
      statsAdd(Stats, StatsPrefix + ".hit." + Result.SchemaName);
      if (!Result.Exact)
        statsAdd(Stats, StatsPrefix + ".relaxed");
    } else {
      statsAdd(Stats, StatsPrefix + ".infinity");
    }
  }
  return Result;
}

SolveResult DiffEqSolver::solveDirect(const Recurrence &R) const {
  // Equations whose additive part still mentions unknown functions cannot
  // be solved; and equations with both shift and divide terms have no
  // schema in the library.
  if (!containsAnyCall(R.Additive)) {
    for (const auto &S : Schemas)
      if (std::optional<SolveResult> Result = S->apply(R))
        return *Result;
  }
  // Diagnose the failure for explain() in increasing order of specificity.
  std::string Why;
  if (containsAnyCall(R.Additive))
    Why = "additive part still contains unknown function calls (system "
          "of equations could not be reduced by substitution)";
  else if (!R.ShiftTerms.empty() && !R.DivideTerms.empty())
    Why = "equation mixes shift and divide self terms; no library schema "
          "covers that shape";
  else if (R.hasSelfTerms() && R.Boundaries.empty())
    Why = "no boundary conditions (recursion has no constant-size base "
          "case)";
  else {
    Why = "no schema in the approximation set matched (tried:";
    for (const auto &S : Schemas)
      Why += std::string(" ") + S->name();
    Why += ")";
  }
  SolveResult Fail{makeInfinity(), std::string(), /*Exact=*/false,
                   std::move(Why)};
  Fail.Lo = makeNumber(0);
  return Fail;
}

void DiffEqSolver::disableSchema(const std::string &Name) {
  for (auto It = Schemas.begin(); It != Schemas.end(); ++It) {
    if ((*It)->name() == Name) {
      Schemas.erase(It);
      return;
    }
  }
}

std::vector<std::string> DiffEqSolver::schemaNames() const {
  std::vector<std::string> Names;
  for (const auto &S : Schemas)
    Names.push_back(S->name());
  return Names;
}

std::string DiffEqSolver::tableSignature() const {
  std::string Sig;
  for (const auto &S : Schemas) {
    if (!Sig.empty())
      Sig += ",";
    Sig += S->name();
  }
  return Sig;
}
