//===- diffeq/SolverCache.h - Memoized recurrence solving -----------------===//
//
// Part of GranLog; see DESIGN.md "Parallel analysis & solver cache".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe memo table for DiffEqSolver.  Difference equations that
/// are structurally identical up to variable names recur constantly across
/// predicates (every linear list traversal yields f(n) = f(n-1) + c) and
/// across corpus benchmarks, so each distinct equation is solved exactly
/// once and the closed form is rename-mapped back to the caller's
/// variables.
///
/// Keying: the recurrence is canonicalized by renaming the recursion
/// variable to "_g0", the remaining free variables to "_g1", "_g2", ... in
/// first-occurrence order, and the unknown function to "f"; the key is the
/// canonical equation itself (CacheKey below) — term lists compared
/// value-wise and the additive part / boundary values compared by *node
/// identity*, exact under hash-consed expressions, with the node's
/// precomputed structural hash feeding the table hash.  No serialization
/// to text is involved.  The solver's schema table signature is part of
/// the key so ablation runs (disabled schemas) never share entries with
/// full-table runs.  Term order is preserved, not sorted: schemas consume
/// terms order-sensitively when building max/sum expressions, so
/// reordering could change the (still sound) shape of the closed form and
/// break the cache-on == cache-off identity the property tests pin down.
///
/// Determinism: each entry is computed under a std::call_once, so the miss
/// count equals the number of distinct keys — independent of thread
/// schedule — and hit/miss totals are reproducible between --jobs 1 and
/// --jobs N runs over the same workload.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_DIFFEQ_SOLVERCACHE_H
#define GRANLOG_DIFFEQ_SOLVERCACHE_H

#include "diffeq/Solver.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace granlog {

class SolverCache {
public:
  /// How one solve() interacted with the table.  DiskHit is a Hit whose
  /// entry was loaded from a persistent cache file (solved by a previous
  /// process); hits()/diskHits() count it under both totals.
  enum class Outcome { Hit, Miss, Bypass, DiskHit };

  /// The memo-table key: the canonical equation's self-term lists, its
  /// interned additive part and boundary values (compared by arena
  /// index — structural equality under hash-consing), and the solver's
  /// schema table signature.  Function/Var names are canonical by construction
  /// ("f" over "_g0") and so carry no information.
  struct CacheKey {
    std::string TableSignature;
    std::vector<ShiftTerm> ShiftTerms;
    std::vector<DivideTerm> DivideTerms;
    ExprRef Additive;
    std::vector<Boundary> Boundaries;

    bool operator==(const CacheKey &) const = default;
  };

  /// Hashes a CacheKey from the interned nodes' precomputed structural
  /// hashes and the terms' rational components.
  struct CacheKeyHash {
    size_t operator()(const CacheKey &K) const;
  };

  /// A canonicalized recurrence: the rewritten equation, its cache key
  /// (TableSignature left empty — solve() fills it in), and the
  /// canonical-name -> original-name map needed to translate the cached
  /// closed form back.
  struct Canonical {
    Recurrence R;
    CacheKey Key;
    std::vector<std::pair<std::string, std::string>> RenameBack;
  };

  /// Renames variables/function to canonical form ("_g0", "_g1", ..., "f").
  /// This is the *single* canonicalizer: the in-memory CacheKey and the
  /// on-disk JSON format (saveToFile) both serialize exactly what it
  /// produces, so the two representations cannot drift.  Returns nullopt
  /// when the equation must bypass the cache: the additive part still
  /// contains unknown function calls (the solver diagnoses those with an
  /// equation-specific Why), or a variable already uses the reserved "_g"
  /// prefix (renaming would capture).
  static std::optional<Canonical> canonicalize(const Recurrence &R);

  /// Solves \p R through the cache: canonicalize, look up (inserting a
  /// not-yet-solved entry on miss), compute via \p SolveFn under a
  /// call_once so every distinct equation is solved exactly once, and
  /// rename the closed form back to \p R's variables.  \p TableSignature
  /// distinguishes solver configurations (comma-joined schema names).
  /// Thread-safe; concurrent lookups of the same key block until the
  /// first computation finishes and then share its result.
  SolveResult solve(const Recurrence &R, const std::string &TableSignature,
                    const std::function<SolveResult(const Recurrence &)> &SolveFn,
                    Outcome *Out = nullptr);

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  /// Hits served by entries that were loaded from a disk cache file.
  uint64_t diskHits() const {
    return DiskHits.load(std::memory_order_relaxed);
  }
  size_t entries() const;

  void clear();

  /// \name Persistent on-disk cache (JSON via support/Json).
  ///
  /// The file stores the canonical keys exactly as canonicalize()
  /// produces them plus their solved closed forms, versioned by
  /// DiskFormatVersion; each entry additionally carries its schema-table
  /// signature, so one file serves every solver configuration and
  /// ablation runs never see full-table entries.  Degraded results are
  /// never written (they reflect a budget, not the equation).  A corrupt,
  /// unparsable or wrong-version file is rejected with a diagnostic
  /// message and an empty cache — never undefined behavior.
  /// @{

  /// Bump when the JSON layout changes; old files are then rejected
  /// (and overwritten on the next save).  v2 added the mandatory "lo"
  /// closed form (SolveResult::Lo) to every stored result.
  static constexpr int DiskFormatVersion = 2;

  /// Merges the entries of \p Path into this cache (loaded entries count
  /// hits as disk hits).  Returns false and sets \p Error when the file
  /// exists but is corrupt or has the wrong version; a missing file is
  /// success with zero entries (first run).
  bool loadFromFile(const std::string &Path, std::string *Error = nullptr);

  /// Writes every solved, non-degraded entry to \p Path (atomically via a
  /// temp file + rename).  Returns false and sets \p Error on I/O errors.
  bool saveToFile(const std::string &Path,
                  std::string *Error = nullptr) const;

  /// @}

private:
  struct Entry {
    std::once_flag Once;
    SolveResult Result;
    /// Preloaded from a cache file (Once already fired); hits on such
    /// entries bump DiskHits.
    bool FromDisk = false;
  };

  mutable std::mutex Mutex;
  std::unordered_map<CacheKey, std::shared_ptr<Entry>, CacheKeyHash> Map;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> DiskHits{0};
};

} // namespace granlog

#endif // GRANLOG_DIFFEQ_SOLVERCACHE_H
