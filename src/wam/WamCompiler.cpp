//===- wam/WamCompiler.cpp ------------------------------------------------===//

#include "wam/WamCompiler.h"

#include <deque>
#include <set>

using namespace granlog;

const char *granlog::wamOpName(WamOp Op) {
  switch (Op) {
  case WamOp::GetVariable:
    return "get_variable";
  case WamOp::GetValue:
    return "get_value";
  case WamOp::GetConstant:
    return "get_constant";
  case WamOp::GetNil:
    return "get_nil";
  case WamOp::GetList:
    return "get_list";
  case WamOp::GetStructure:
    return "get_structure";
  case WamOp::UnifyVariable:
    return "unify_variable";
  case WamOp::UnifyValue:
    return "unify_value";
  case WamOp::UnifyConstant:
    return "unify_constant";
  case WamOp::UnifyVoid:
    return "unify_void";
  case WamOp::PutVariable:
    return "put_variable";
  case WamOp::PutValue:
    return "put_value";
  case WamOp::PutConstant:
    return "put_constant";
  case WamOp::PutNil:
    return "put_nil";
  case WamOp::PutList:
    return "put_list";
  case WamOp::PutStructure:
    return "put_structure";
  case WamOp::SetVariable:
    return "set_variable";
  case WamOp::SetValue:
    return "set_value";
  case WamOp::SetConstant:
    return "set_constant";
  case WamOp::SetVoid:
    return "set_void";
  case WamOp::Allocate:
    return "allocate";
  case WamOp::Deallocate:
    return "deallocate";
  case WamOp::Call:
    return "call";
  case WamOp::Execute:
    return "execute";
  case WamOp::Proceed:
    return "proceed";
  case WamOp::CallBuiltin:
    return "call_builtin";
  case WamOp::TryMeElse:
    return "try_me_else";
  case WamOp::RetryMeElse:
    return "retry_me_else";
  case WamOp::TrustMe:
    return "trust_me";
  case WamOp::NeckCut:
    return "neck_cut";
  }
  return "?";
}

std::string WamInstr::text(const SymbolTable &Symbols) const {
  std::string Out = wamOpName(Op);
  if (Sym.isValid()) {
    Out += " " + Symbols.text(Sym);
    if (B >= 0)
      Out += "/" + std::to_string(B);
  }
  if (A >= 0)
    Out += (Sym.isValid() ? ", " : " ") + std::string("r") +
           std::to_string(A);
  return Out;
}

std::string CompiledClause::listing(const SymbolTable &Symbols) const {
  std::string Out;
  for (const WamInstr &I : Code) {
    Out += "    ";
    Out += I.text(Symbols);
    Out += '\n';
  }
  return Out;
}

namespace {

/// Compiles the clauses of one predicate.
class ClauseCompiler {
public:
  ClauseCompiler(const Program &P, const Clause &C, bool HasChoicePoints,
                 unsigned ClauseIndex, unsigned NumClauses)
      : P(P), Symbols(P.symbols()), C(C) {
    // Choice-point management on clause entry.
    if (HasChoicePoints) {
      if (ClauseIndex == 0)
        emit({WamOp::TryMeElse});
      else if (ClauseIndex + 1 < NumClauses)
        emit({WamOp::RetryMeElse});
      else
        emit({WamOp::TrustMe});
    }
    classifyVariables();
    if (NeedsFrame)
      emit({WamOp::Allocate, static_cast<int>(PermanentCount)});
    compileHead();
    Out.HeadCount = static_cast<unsigned>(Out.Code.size());
    compileBody();
  }

  CompiledClause take() { return std::move(Out); }

private:
  void emit(WamInstr I) { Out.Code.push_back(I); }

  /// Permanent variables occur in more than one body goal (or in the head
  /// and a non-first body goal); everything else is temporary.  Only the
  /// count matters for instruction counting.
  void classifyVariables() {
    const std::vector<const Term *> &Lits = C.bodyLiterals();
    NeedsFrame = Lits.size() > 1;
    std::unordered_map<const VarTerm *, int> FirstGoal;
    std::unordered_map<const VarTerm *, bool> Permanent;
    auto Visit = [&](const Term *T, int Goal) {
      std::vector<const VarTerm *> Vars;
      collectVariables(T, Vars);
      for (const VarTerm *V : Vars) {
        auto It = FirstGoal.find(V);
        if (It == FirstGoal.end())
          FirstGoal[V] = Goal;
        else if (It->second != Goal)
          Permanent[V] = true;
      }
    };
    // The head counts as part of the first goal (argument registers
    // survive until the first call).
    Visit(C.head(), 0);
    for (size_t I = 0; I != Lits.size(); ++I)
      Visit(Lits[I], static_cast<int>(I == 0 ? 0 : I));
    for (const auto &[V, IsPerm] : Permanent)
      if (IsPerm)
        ++PermanentCount;
    NeedsFrame = NeedsFrame && PermanentCount > 0;
  }

  /// Emits head-unification code for argument \p Arg in register \p Reg.
  void compileHeadArg(const Term *Arg, int Reg) {
    Arg = deref(Arg);
    switch (Arg->kind()) {
    case TermKind::Variable: {
      const VarTerm *V = cast<VarTerm>(Arg);
      if (Seen.count(V)) {
        emit({WamOp::GetValue, Reg});
      } else {
        Seen.insert(V);
        emit({WamOp::GetVariable, Reg});
      }
      return;
    }
    case TermKind::Atom:
      if (isNil(Arg, Symbols))
        emit({WamOp::GetNil, Reg});
      else
        emit({WamOp::GetConstant, Reg, -1, cast<AtomTerm>(Arg)->name()});
      return;
    case TermKind::Int:
    case TermKind::Float:
      emit({WamOp::GetConstant, Reg});
      return;
    case TermKind::Struct: {
      const StructTerm *S = cast<StructTerm>(Arg);
      if (isCons(Arg, Symbols))
        emit({WamOp::GetList, Reg});
      else
        emit({WamOp::GetStructure, Reg,
              static_cast<int>(S->arity()), S->name()});
      // Unify each subterm; nested structures get fresh temporaries and
      // are processed afterwards (breadth-first flattening).
      std::deque<std::pair<const Term *, int>> Pending;
      for (const Term *Sub : S->args())
        unifySubterm(Sub, Pending);
      while (!Pending.empty()) {
        auto [Nested, Temp] = Pending.front();
        Pending.pop_front();
        const StructTerm *NS = cast<StructTerm>(deref(Nested));
        if (isCons(Nested, Symbols))
          emit({WamOp::GetList, Temp});
        else
          emit({WamOp::GetStructure, Temp,
                static_cast<int>(NS->arity()), NS->name()});
        for (const Term *Sub : NS->args())
          unifySubterm(Sub, Pending);
      }
      return;
    }
    }
  }

  void unifySubterm(const Term *Sub,
                    std::deque<std::pair<const Term *, int>> &Pending) {
    Sub = deref(Sub);
    switch (Sub->kind()) {
    case TermKind::Variable: {
      const VarTerm *V = cast<VarTerm>(Sub);
      if (Seen.count(V)) {
        emit({WamOp::UnifyValue});
      } else {
        Seen.insert(V);
        emit({WamOp::UnifyVariable});
      }
      return;
    }
    case TermKind::Atom:
      emit({WamOp::UnifyConstant, -1, -1, cast<AtomTerm>(Sub)->name()});
      return;
    case TermKind::Int:
    case TermKind::Float:
      emit({WamOp::UnifyConstant});
      return;
    case TermKind::Struct: {
      int Temp = NextTemp++;
      emit({WamOp::UnifyVariable, Temp});
      Pending.push_back({Sub, Temp});
      return;
    }
    }
  }

  void compileHead() {
    const StructTerm *Head = dynCast<StructTerm>(deref(C.head()));
    if (!Head)
      return; // 0-ary predicate: nothing to unify
    NextTemp = static_cast<int>(Head->arity()) + 1;
    for (unsigned I = 0; I != Head->arity(); ++I)
      compileHeadArg(Head->arg(I), static_cast<int>(I + 1));
  }

  /// Emits argument-loading code for one body goal argument.
  void compileBodyArg(const Term *Arg, int Reg) {
    Arg = deref(Arg);
    switch (Arg->kind()) {
    case TermKind::Variable: {
      const VarTerm *V = cast<VarTerm>(Arg);
      if (Seen.count(V)) {
        emit({WamOp::PutValue, Reg});
      } else {
        Seen.insert(V);
        emit({WamOp::PutVariable, Reg});
      }
      return;
    }
    case TermKind::Atom:
      if (isNil(Arg, Symbols))
        emit({WamOp::PutNil, Reg});
      else
        emit({WamOp::PutConstant, Reg, -1, cast<AtomTerm>(Arg)->name()});
      return;
    case TermKind::Int:
    case TermKind::Float:
      emit({WamOp::PutConstant, Reg});
      return;
    case TermKind::Struct: {
      // Build nested structures bottom-up with set_* into temporaries,
      // then put the outermost.
      const StructTerm *S = cast<StructTerm>(Arg);
      for (const Term *Sub : S->args())
        buildSubterm(Sub);
      if (isCons(Arg, Symbols))
        emit({WamOp::PutList, Reg});
      else
        emit({WamOp::PutStructure, Reg,
              static_cast<int>(S->arity()), S->name()});
      for (const Term *Sub : S->args())
        setSubterm(Sub);
      return;
    }
    }
  }

  /// Pre-builds a nested structure into a temporary (bottom-up).
  void buildSubterm(const Term *Sub) {
    Sub = deref(Sub);
    const StructTerm *S = dynCast<StructTerm>(Sub);
    if (!S)
      return;
    for (const Term *Inner : S->args())
      buildSubterm(Inner);
    int Temp = NextTemp++;
    if (isCons(Sub, Symbols))
      emit({WamOp::PutList, Temp});
    else
      emit({WamOp::PutStructure, Temp, static_cast<int>(S->arity()),
            S->name()});
    for (const Term *Inner : S->args())
      setSubterm(Inner);
    BuiltTemps[S] = Temp;
  }

  void setSubterm(const Term *Sub) {
    Sub = deref(Sub);
    switch (Sub->kind()) {
    case TermKind::Variable: {
      const VarTerm *V = cast<VarTerm>(Sub);
      if (Seen.count(V)) {
        emit({WamOp::SetValue});
      } else {
        Seen.insert(V);
        emit({WamOp::SetVariable});
      }
      return;
    }
    case TermKind::Atom:
      emit({WamOp::SetConstant, -1, -1, cast<AtomTerm>(Sub)->name()});
      return;
    case TermKind::Int:
    case TermKind::Float:
      emit({WamOp::SetConstant});
      return;
    case TermKind::Struct: {
      auto It = BuiltTemps.find(cast<StructTerm>(Sub));
      emit({WamOp::SetValue, It == BuiltTemps.end() ? -1 : It->second});
      return;
    }
    }
  }

  void compileBody() {
    const std::vector<const Term *> &Lits = C.bodyLiterals();
    if (Lits.empty()) {
      emit({WamOp::Proceed});
      return;
    }
    for (size_t I = 0; I != Lits.size(); ++I) {
      size_t Before = Out.Code.size();
      const Term *Lit = deref(Lits[I]);
      std::optional<Functor> F = literalFunctor(Lit);
      bool IsCut = F && F->Arity == 0 && Symbols.text(F->Name) == "!";
      if (IsCut) {
        emit({WamOp::NeckCut});
      } else if (F) {
        if (const StructTerm *S = dynCast<StructTerm>(Lit))
          for (unsigned A = 0; A != S->arity(); ++A)
            compileBodyArg(S->arg(A), static_cast<int>(A + 1));
        if (isBuiltinFunctor(*F, Symbols)) {
          emit({WamOp::CallBuiltin, -1, static_cast<int>(F->Arity),
                F->Name});
        } else if (I + 1 == Lits.size() && !NeedsFrame) {
          emit({WamOp::Execute, -1, static_cast<int>(F->Arity), F->Name});
        } else {
          emit({WamOp::Call, -1, static_cast<int>(F->Arity), F->Name});
        }
      }
      Out.LiteralCounts.push_back(
          static_cast<unsigned>(Out.Code.size() - Before));
    }
    if (NeedsFrame) {
      emit({WamOp::Deallocate});
      emit({WamOp::Proceed});
      // Frame teardown is part of the clause's own (head) cost share.
      Out.HeadCount += 2;
    } else if (!Lits.empty()) {
      const Term *Last = deref(Lits.back());
      std::optional<Functor> F = literalFunctor(Last);
      if (!F || isBuiltinFunctor(*F, Symbols))
        emit({WamOp::Proceed});
    }
  }

  const Program &P;
  const SymbolTable &Symbols;
  const Clause &C;
  CompiledClause Out;
  std::set<const VarTerm *> Seen;
  std::unordered_map<const StructTerm *, int> BuiltTemps;
  int NextTemp = 16;
  bool NeedsFrame = false;
  unsigned PermanentCount = 0;
};

} // namespace

WamCompiler::WamCompiler(const Program &P) : P(&P) {
  for (const auto &Pred : P.predicates()) {
    std::vector<CompiledClause> Clauses;
    unsigned N = static_cast<unsigned>(Pred->clauses().size());
    for (unsigned I = 0; I != N; ++I) {
      ClauseCompiler CC(P, Pred->clauses()[I], /*HasChoicePoints=*/N > 1,
                        I, N);
      Clauses.push_back(CC.take());
    }
    Compiled.emplace(Pred->functor(), std::move(Clauses));
  }
}

const CompiledClause *WamCompiler::clause(Functor F, unsigned Index) const {
  auto It = Compiled.find(F);
  if (It == Compiled.end() || Index >= It->second.size())
    return nullptr;
  return &It->second[Index];
}

unsigned WamCompiler::headCost(Functor F, unsigned Index) const {
  const CompiledClause *C = clause(F, Index);
  return C ? C->HeadCount : 2;
}

unsigned WamCompiler::literalCost(Functor F, unsigned Index,
                                  unsigned LitIndex) const {
  const CompiledClause *C = clause(F, Index);
  if (!C || LitIndex >= C->LiteralCounts.size())
    return 1;
  return C->LiteralCounts[LitIndex];
}

unsigned WamCompiler::programSize() const {
  unsigned N = 0;
  for (const auto &[F, Clauses] : Compiled)
    for (const CompiledClause &C : Clauses)
      N += static_cast<unsigned>(C.Code.size());
  return N;
}
