//===- wam/WamCompiler.h - WAM-style clause compilation -------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Warren Abstract Machine flavoured clause compiler, after the
/// RAP-WAM that underlies the paper's &-Prolog system [6].  GranLog does
/// not execute WAM code (the tree interpreter defines the semantics);
/// the compiler exists to make the paper's third cost metric — "the
/// number of instructions executed" (Section 4) — concrete: every clause
/// is flattened into get/unify (head), put/set (argument loading) and
/// control instructions, and the resulting counts feed both the static
/// cost analysis and the dynamic instruction accounting.
///
/// The compilation scheme is the standard one (Aït-Kaci's tutorial
/// subset):
///  - head arguments compile to get_constant / get_variable / get_value /
///    get_list / get_structure with unify_* for subterms, breadth-first
///    through nested structures via fresh temporaries;
///  - body goal arguments compile to put_* / set_* bottom-up;
///  - each body goal costs an additional call (or execute for the last),
///    builtins a call_builtin;
///  - clauses with permanent variables pay allocate/deallocate;
///  - multi-clause predicates pay try_me_else / retry_me_else / trust_me
///    choice-point management on entry.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_WAM_WAMCOMPILER_H
#define GRANLOG_WAM_WAMCOMPILER_H

#include "program/Program.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace granlog {

/// WAM instruction opcodes (the counting subset).
enum class WamOp {
  // Head unification.
  GetVariable,
  GetValue,
  GetConstant,
  GetNil,
  GetList,
  GetStructure,
  UnifyVariable,
  UnifyValue,
  UnifyConstant,
  UnifyVoid,
  // Body argument loading.
  PutVariable,
  PutValue,
  PutConstant,
  PutNil,
  PutList,
  PutStructure,
  SetVariable,
  SetValue,
  SetConstant,
  SetVoid,
  // Control.
  Allocate,
  Deallocate,
  Call,
  Execute,
  Proceed,
  CallBuiltin,
  TryMeElse,
  RetryMeElse,
  TrustMe,
  NeckCut,
};

/// Printable opcode name ("get_structure", ...).
const char *wamOpName(WamOp Op);

/// One instruction: opcode plus up to two small operands and an optional
/// symbol (functor or constant).
struct WamInstr {
  WamOp Op = WamOp::Proceed;
  int A = -1; ///< register / arity, -1 when unused
  int B = -1;
  Symbol Sym = Symbol(); ///< functor or constant name; invalid when unused

  WamInstr() = default;
  WamInstr(WamOp Op, int A = -1, int B = -1, Symbol Sym = Symbol())
      : Op(Op), A(A), B(B), Sym(Sym) {}

  std::string text(const SymbolTable &Symbols) const;
};

/// The compiled form of one clause.
struct CompiledClause {
  std::vector<WamInstr> Code;

  /// Instructions charged to resolving the head: choice-point management,
  /// allocate, and all get/unify instructions.
  unsigned HeadCount = 0;
  /// Per body literal (in bodyLiterals() order): put/set argument loading
  /// plus the call/execute (or call_builtin) itself.
  std::vector<unsigned> LiteralCounts;

  unsigned totalCount() const {
    unsigned N = HeadCount;
    for (unsigned C : LiteralCounts)
      N += C;
    return N;
  }

  /// Disassembles the clause for debugging / the examples.
  std::string listing(const SymbolTable &Symbols) const;
};

/// Compiles every clause of a program and serves instruction counts.
class WamCompiler {
public:
  explicit WamCompiler(const Program &P);

  /// The compiled form of clause \p Index of \p F.  Returns nullptr for
  /// unknown predicates / indices.
  const CompiledClause *clause(Functor F, unsigned Index) const;

  /// Instruction count charged when clause \p Index of \p F resolves
  /// (head + its share of choice-point management).
  unsigned headCost(Functor F, unsigned Index) const;

  /// Instruction count for invoking body literal \p LitIndex of that
  /// clause (argument loading + call).
  unsigned literalCost(Functor F, unsigned Index, unsigned LitIndex) const;

  /// Whole-program instruction total (for reporting).
  unsigned programSize() const;

private:
  const Program *P;
  std::unordered_map<Functor, std::vector<CompiledClause>> Compiled;
};

} // namespace granlog

#endif // GRANLOG_WAM_WAMCOMPILER_H
