//===- interp/Interpreter.h - Resolution interpreter ----------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tree-walking resolution interpreter for the Prolog subset, with
/// - standard backtracking, cut, if-then-else, negation as failure;
/// - arithmetic over integers and doubles (enough for FFT twiddles);
/// - exact cost counters (resolutions, head-unification attempts,
///   unifications, builtins, grain tests) that realize the paper's cost
///   metrics on real executions;
/// - optional capture of the series-parallel cost tree: '&' conjunctions
///   become Par nodes whose branch work is measured in configurable
///   abstract units, ready for runtime/Scheduler.h;
/// - the '$grain_leq'(Term, K, Measure) builtin inserted by the
///   granularity-control transformation, charging a configurable test
///   cost plus (optionally) a linear size-traversal cost when the system
///   does not maintain size information (paper Section 2, footnote 1).
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_INTERP_INTERPRETER_H
#define GRANLOG_INTERP_INTERPRETER_H

#include "program/Program.h"
#include "runtime/CostTree.h"
#include "support/Stats.h"
#include "wam/WamCompiler.h"
#include "term/Unify.h"

#include <cstdint>
#include <functional>
#include <memory>

namespace granlog {

/// Work-unit weights used to convert counted events into the abstract
/// cost units of the runtime simulation (one unit ~ one resolution).
struct CostWeights {
  double Resolution = 1.0;    ///< successful head unification + body entry
  double FailedAttempt = 0.3; ///< clause head that did not match
  double Builtin = 0.3;       ///< arithmetic/comparison/unification builtin
  double GrainTest = 1.0;     ///< '$grain_leq' evaluation
  double SizePerElement = 0;  ///< per element of a list-length test when
                              ///< the system does not maintain sizes
                              ///< (paper footnote 1)
  double SizePerElementDeep = 0.25; ///< per symbol of a term-size or
                                    ///< term-depth test (never maintained)
};

/// Interpreter configuration.
struct InterpOptions {
  CostWeights Weights;
  bool CaptureTree = true;
  uint64_t StepLimit = 200u * 1000 * 1000; ///< resolutions before abort
  /// When set, work is charged in *compiled instruction counts*: each
  /// resolved clause costs its WAM head instructions plus all of its body
  /// literals' argument-loading/call instructions (charged at entry), and
  /// a failed head match costs one instruction (indexing).  Builtins and
  /// resolutions then carry no extra flat weight.
  const WamCompiler *Wam = nullptr;
  /// When non-null, each solve() flushes its event counters into this
  /// registry under "interp.*" (aggregating across runs).
  StatsRegistry *Stats = nullptr;
};

/// Event counters of one run.
struct InterpCounters {
  uint64_t Resolutions = 0;
  uint64_t Attempts = 0; ///< clause head unification attempts
  uint64_t Builtins = 0;
  uint64_t GrainTests = 0;
  uint64_t Unifications = 0;
  uint64_t Instructions = 0; ///< only counted in WAM-accounting mode
  double WorkUnits = 0;
};

/// The interpreter.  One instance per query run (counters and the cost
/// tree are per-run).
class Interpreter {
public:
  Interpreter(const Program &P, TermArena &Arena,
              InterpOptions Options = InterpOptions());

  /// Proves \p Goal (to its first solution).  Returns false on failure or
  /// when the step limit was hit (see aborted()).
  bool solve(const Term *Goal);

  /// Parses and proves a goal given as text.  Errors are reported through
  /// \p Diags.
  bool solveText(std::string_view GoalText, Diagnostics &Diags);

  const InterpCounters &counters() const { return Counters; }
  bool aborted() const { return Aborted; }

  /// The captured execution trace (valid after solve(); null when
  /// CaptureTree is off).
  std::unique_ptr<CostNode> takeTree();

  /// Access to bindings after a successful solve (for checking results).
  TermArena &arena() { return Arena; }

private:
  using Cont = const std::function<bool()> &;

  bool solveGoal(const Term *Goal, bool *CutSignal, Cont K);
  bool callPredicate(Functor F, const Term *Goal, Cont K);
  bool evalBuiltin(Functor F, const Term *Goal);
  bool solveParallel(const StructTerm *S, bool *CutSignal, Cont K);

  /// Arithmetic evaluation; false on type error / unbound variable.
  struct Number {
    bool IsFloat = false;
    int64_t IntVal = 0;
    double FloatVal = 0;
    double asDouble() const {
      return IsFloat ? FloatVal : static_cast<double>(IntVal);
    }
  };
  bool evalArith(const Term *T, Number &Out);

  void charge(double Units) {
    Counters.WorkUnits += Units;
    if (Tree)
      Tree->addWork(Units);
  }
  bool budgetExceeded() {
    if (Counters.Resolutions <= Options.StepLimit)
      return false;
    Aborted = true;
    return true;
  }

  const Program &P;
  TermArena &Arena;
  const SymbolTable &Symbols;
  InterpOptions Options;
  BindingEnv Env;
  UnifyStats UStats;
  InterpCounters Counters;
  std::unique_ptr<CostTreeBuilder> Tree;
  std::unique_ptr<CostNode> FinishedTree;
  bool Aborted = false;
};

} // namespace granlog

#endif // GRANLOG_INTERP_INTERPRETER_H
