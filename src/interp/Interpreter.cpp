//===- interp/Interpreter.cpp ---------------------------------------------===//

#include "interp/Interpreter.h"

#include "reader/Parser.h"
#include "size/Measures.h"

#include <cmath>
#include <pthread.h>

using namespace granlog;

Interpreter::Interpreter(const Program &P, TermArena &Arena,
                         InterpOptions Options)
    : P(P), Arena(Arena), Symbols(Arena.symbols()), Options(Options) {
  if (Options.CaptureTree)
    Tree = std::make_unique<CostTreeBuilder>();
}

namespace {

/// The interpreter is written in continuation-passing style, so the C++
/// stack depth grows with the size of the proof.  Queries therefore run on
/// a dedicated thread with a large stack.
void runOnLargeStack(const std::function<void()> &Fn) {
  struct Ctx {
    const std::function<void()> *Fn;
  } C{&Fn};
  pthread_attr_t Attr;
  pthread_attr_init(&Attr);
  pthread_attr_setstacksize(&Attr, 1ull << 30); // 1 GiB
  pthread_t Thread;
  auto Trampoline = [](void *Arg) -> void * {
    (*static_cast<Ctx *>(Arg)->Fn)();
    return nullptr;
  };
  if (pthread_create(&Thread, &Attr, Trampoline, &C) == 0) {
    pthread_join(Thread, nullptr);
  } else {
    Fn(); // fall back to the caller's stack
  }
  pthread_attr_destroy(&Attr);
}

} // namespace

bool Interpreter::solve(const Term *Goal) {
  bool Result = false;
  runOnLargeStack([&] {
    bool Cut = false;
    Result = solveGoal(Goal, &Cut, [] { return true; });
  });
  Counters.Unifications = UStats.Unifications;
  if (Tree)
    FinishedTree = Tree->finish();
  if (StatsRegistry *S = Options.Stats) {
    S->add("interp.queries");
    S->add("interp.resolutions", Counters.Resolutions);
    S->add("interp.attempts", Counters.Attempts);
    S->add("interp.builtins", Counters.Builtins);
    S->add("interp.grain_tests", Counters.GrainTests);
    S->add("interp.unifications", Counters.Unifications);
    S->add("interp.instructions", Counters.Instructions);
    S->addValue("interp.work_units", Counters.WorkUnits);
    if (Aborted)
      S->add("interp.aborted");
  }
  return Result && !Aborted;
}

bool Interpreter::solveText(std::string_view GoalText, Diagnostics &Diags) {
  const Term *Goal = parseTermText(GoalText, Arena, Diags);
  if (!Goal)
    return false;
  return solve(Goal);
}

std::unique_ptr<CostNode> Interpreter::takeTree() {
  return std::move(FinishedTree);
}

bool Interpreter::solveGoal(const Term *Goal, bool *CutSignal, Cont K) {
  if (Aborted)
    return false;
  Goal = deref(Goal);

  if (const AtomTerm *A = dynCast<AtomTerm>(Goal)) {
    const std::string &Name = Symbols.text(A->name());
    if (Name == "true")
      return K();
    if (Name == "fail" || Name == "false")
      return false;
    if (Name == "!") {
      if (K())
        return true;
      *CutSignal = true;
      return false;
    }
    if (Name == "nl") {
      charge(Options.Weights.Builtin);
      return K();
    }
    return callPredicate(Functor{A->name(), 0}, Goal, K);
  }

  const StructTerm *S = dynCast<StructTerm>(Goal);
  if (!S)
    return false; // calling a variable or number: error => failure
  const std::string &Name = Symbols.text(S->name());

  if (S->arity() == 2) {
    if (Name == ",") {
      const Term *A = S->arg(0);
      const Term *B = S->arg(1);
      return solveGoal(A, CutSignal, [&]() -> bool {
        return solveGoal(B, CutSignal, K);
      });
    }
    if (Name == "&")
      return solveParallel(S, CutSignal, K);
    if (Name == ";") {
      const Term *A = deref(S->arg(0));
      const StructTerm *Cond = dynCast<StructTerm>(A);
      if (Cond && Cond->arity() == 2 &&
          Symbols.text(Cond->name()) == "->") {
        BindingEnv::Mark M = Env.mark();
        bool LocalCut = false;
        bool Met = false;
        solveGoal(Cond->arg(0), &LocalCut, [&]() -> bool {
          Met = true;
          return true; // commit to the first solution of the condition
        });
        if (Met)
          return solveGoal(Cond->arg(1), CutSignal, K);
        Env.undoTo(M);
        return solveGoal(S->arg(1), CutSignal, K);
      }
      // Plain disjunction.
      BindingEnv::Mark M = Env.mark();
      if (solveGoal(S->arg(0), CutSignal, K))
        return true;
      if (*CutSignal)
        return false;
      Env.undoTo(M);
      return solveGoal(S->arg(1), CutSignal, K);
    }
    if (Name == "->") {
      // Bare if-then: (C -> T) == (C -> T ; fail).
      BindingEnv::Mark M = Env.mark();
      bool LocalCut = false;
      bool Met = false;
      solveGoal(S->arg(0), &LocalCut, [&]() -> bool {
        Met = true;
        return true;
      });
      if (Met)
        return solveGoal(S->arg(1), CutSignal, K);
      Env.undoTo(M);
      return false;
    }
  }
  if (S->arity() == 1 && Name == "\\+") {
    BindingEnv::Mark M = Env.mark();
    bool LocalCut = false;
    bool Met = false;
    solveGoal(S->arg(0), &LocalCut, [&]() -> bool {
      Met = true;
      return true;
    });
    Env.undoTo(M);
    return Met ? false : K();
  }

  Functor F = S->functor();
  // between/3 is the one nondeterministic builtin: it enumerates integers
  // through the continuation.
  if (S->arity() == 3 && Name == "between") {
    Number Lo, Hi;
    if (!evalArith(S->arg(0), Lo) || !evalArith(S->arg(1), Hi))
      return false;
    charge(Options.Weights.Builtin);
    const Term *X = deref(S->arg(2));
    if (!X->isVariable()) {
      Number V;
      if (!evalArith(X, V))
        return false;
      return V.asDouble() >= Lo.asDouble() &&
             V.asDouble() <= Hi.asDouble() && K();
    }
    for (int64_t V = Lo.IntVal; V <= Hi.IntVal; ++V) {
      BindingEnv::Mark M = Env.mark();
      if (unify(X, Arena.makeInt(V), Env, &UStats) && K())
        return true;
      Env.undoTo(M);
      if (Aborted)
        return false;
    }
    return false;
  }
  if (S->arity() == 3 && Name == "findall") {
    charge(Options.Weights.Builtin);
    std::vector<const Term *> Results;
    BindingEnv::Mark M = Env.mark();
    bool LocalCut = false;
    solveGoal(S->arg(1), &LocalCut, [&]() -> bool {
      Results.push_back(resolve(S->arg(0), Arena));
      return false; // keep enumerating solutions
    });
    Env.undoTo(M);
    if (!unify(S->arg(2), Arena.makeList(Results), Env, &UStats))
      return false;
    return K();
  }
  if (isBuiltinFunctor(F, Symbols)) {
    if (!evalBuiltin(F, S))
      return false;
    return K();
  }
  return callPredicate(F, Goal, K);
}

bool Interpreter::solveParallel(const StructTerm *S, bool *CutSignal,
                                Cont K) {
  // Flatten the '&' chain.
  std::vector<const Term *> Goals;
  std::function<void(const Term *)> Flatten = [&](const Term *T) {
    T = deref(T);
    const StructTerm *TS = dynCast<StructTerm>(T);
    if (TS && TS->arity() == 2 && Symbols.text(TS->name()) == "&") {
      Flatten(TS->arg(0));
      Flatten(TS->arg(1));
      return;
    }
    Goals.push_back(T);
  };
  Flatten(S);

  if (!Tree) {
    // No trace capture: semantics of '&' equal ','.
    std::function<bool(size_t)> Run = [&](size_t I) -> bool {
      if (I == Goals.size())
        return K();
      return solveGoal(Goals[I], CutSignal,
                       [&, I]() -> bool { return Run(I + 1); });
    };
    return Run(0);
  }

  size_t M0 = Tree->mark();
  Tree->beginPar();
  size_t ParDepth = Tree->mark();
  std::function<bool(size_t)> Run = [&](size_t I) -> bool {
    if (I == Goals.size()) {
      Tree->unwindTo(M0); // close all branches and the Par node
      return K();
    }
    // If backtracking re-entered this region after the Par was closed,
    // skip the structural bookkeeping (work is still recorded).
    if (Tree->mark() >= ParDepth) {
      Tree->unwindTo(ParDepth);
      Tree->beginBranch();
    }
    return solveGoal(Goals[I], CutSignal,
                     [&, I]() -> bool { return Run(I + 1); });
  };
  bool Ok = Run(0);
  if (!Ok)
    Tree->unwindTo(M0);
  return Ok;
}

bool Interpreter::callPredicate(Functor F, const Term *Goal, Cont K) {
  const Predicate *Pred = P.lookup(F);
  if (!Pred)
    return false; // unknown procedure: fail (no exceptions in this subset)
  bool CutHit = false;
  for (size_t CI = 0; CI != Pred->clauses().size(); ++CI) {
    const Clause &C = Pred->clauses()[CI];
    if (budgetExceeded())
      return false;
    BindingEnv::Mark M = Env.mark();
    TermRenamer Renamer(Arena);
    const Term *Head = Renamer.rename(C.head());
    ++Counters.Attempts;
    if (unify(Goal, Head, Env, &UStats)) {
      ++Counters.Resolutions;
      if (Options.Wam) {
        // Instruction accounting: the clause's full compiled size is
        // charged at entry (head unification + the argument loading and
        // call instructions its body will execute).
        const CompiledClause *CC =
            Options.Wam->clause(F, static_cast<unsigned>(CI));
        unsigned N = CC ? CC->totalCount() : 2;
        Counters.Instructions += N;
        charge(static_cast<double>(N));
      } else {
        charge(Options.Weights.Resolution);
      }
      const Term *Body = Renamer.rename(C.body());
      if (solveGoal(Body, &CutHit, K))
        return true;
    } else {
      if (Options.Wam) {
        // First-argument indexing filters non-matching clauses cheaply.
        Counters.Instructions += 1;
        charge(1.0);
      } else {
        charge(Options.Weights.FailedAttempt);
      }
    }
    Env.undoTo(M);
    if (CutHit || Aborted)
      return false;
  }
  return false;
}

bool Interpreter::evalArith(const Term *T, Number &Out) {
  T = deref(T);
  if (const IntTerm *I = dynCast<IntTerm>(T)) {
    Out = {false, I->value(), 0};
    return true;
  }
  if (const FloatTerm *F = dynCast<FloatTerm>(T)) {
    Out = {true, 0, F->value()};
    return true;
  }
  if (const AtomTerm *A = dynCast<AtomTerm>(T)) {
    const std::string &Name = Symbols.text(A->name());
    if (Name == "pi") {
      Out = {true, 0, M_PI};
      return true;
    }
    if (Name == "e") {
      Out = {true, 0, M_E};
      return true;
    }
    return false;
  }
  const StructTerm *S = dynCast<StructTerm>(T);
  if (!S)
    return false;
  const std::string &Name = Symbols.text(S->name());

  if (S->arity() == 1) {
    Number A;
    if (!evalArith(S->arg(0), A))
      return false;
    if (Name == "-") {
      Out = A.IsFloat ? Number{true, 0, -A.FloatVal}
                      : Number{false, -A.IntVal, 0};
      return true;
    }
    if (Name == "+") {
      Out = A;
      return true;
    }
    if (Name == "abs") {
      Out = A.IsFloat ? Number{true, 0, std::fabs(A.FloatVal)}
                      : Number{false, std::llabs(A.IntVal), 0};
      return true;
    }
    if (Name == "sqrt") {
      Out = {true, 0, std::sqrt(A.asDouble())};
      return true;
    }
    if (Name == "sin") {
      Out = {true, 0, std::sin(A.asDouble())};
      return true;
    }
    if (Name == "cos") {
      Out = {true, 0, std::cos(A.asDouble())};
      return true;
    }
    if (Name == "float") {
      Out = {true, 0, A.asDouble()};
      return true;
    }
    if (Name == "integer" || Name == "truncate") {
      Out = {false, static_cast<int64_t>(A.asDouble()), 0};
      return true;
    }
    return false;
  }
  if (S->arity() != 2)
    return false;
  Number A, B;
  if (!evalArith(S->arg(0), A) || !evalArith(S->arg(1), B))
    return false;
  bool Float = A.IsFloat || B.IsFloat;

  auto IntOp = [&](int64_t V) {
    Out = {false, V, 0};
    return true;
  };
  auto FloatOp = [&](double V) {
    Out = {true, 0, V};
    return true;
  };
  if (Name == "+")
    return Float ? FloatOp(A.asDouble() + B.asDouble())
                 : IntOp(A.IntVal + B.IntVal);
  if (Name == "-")
    return Float ? FloatOp(A.asDouble() - B.asDouble())
                 : IntOp(A.IntVal - B.IntVal);
  if (Name == "*")
    return Float ? FloatOp(A.asDouble() * B.asDouble())
                 : IntOp(A.IntVal * B.IntVal);
  if (Name == "/") {
    if (!Float && B.IntVal != 0 && A.IntVal % B.IntVal == 0)
      return IntOp(A.IntVal / B.IntVal);
    if (B.asDouble() == 0)
      return false;
    return FloatOp(A.asDouble() / B.asDouble());
  }
  if (Name == "//") {
    if (Float || B.IntVal == 0)
      return false;
    return IntOp(A.IntVal / B.IntVal);
  }
  if (Name == "mod") {
    if (Float || B.IntVal == 0)
      return false;
    int64_t R = A.IntVal % B.IntVal;
    if (R != 0 && (R < 0) != (B.IntVal < 0))
      R += B.IntVal;
    return IntOp(R);
  }
  if (Name == "min")
    return Float ? FloatOp(std::min(A.asDouble(), B.asDouble()))
                 : IntOp(std::min(A.IntVal, B.IntVal));
  if (Name == "max")
    return Float ? FloatOp(std::max(A.asDouble(), B.asDouble()))
                 : IntOp(std::max(A.IntVal, B.IntVal));
  if (Name == ">>") {
    if (Float)
      return false;
    return IntOp(A.IntVal >> B.IntVal);
  }
  if (Name == "<<") {
    if (Float)
      return false;
    return IntOp(A.IntVal << B.IntVal);
  }
  return false;
}

bool Interpreter::evalBuiltin(Functor F, const Term *Goal) {
  ++Counters.Builtins;
  charge(Options.Weights.Builtin);
  const StructTerm *S = dynCast<StructTerm>(deref(Goal));
  const std::string &Name = Symbols.text(F.Name);

  if (Name == "is" && S) {
    Number V;
    if (!evalArith(S->arg(1), V))
      return false;
    const Term *Result = V.IsFloat
                             ? static_cast<const Term *>(
                                   Arena.makeFloat(V.FloatVal))
                             : Arena.makeInt(V.IntVal);
    return unify(S->arg(0), Result, Env, &UStats);
  }

  if (S && S->arity() == 2 &&
      (Name == "<" || Name == ">" || Name == "=<" || Name == ">=" ||
       Name == "=:=" || Name == "=\\=")) {
    Number A, B;
    if (!evalArith(S->arg(0), A) || !evalArith(S->arg(1), B))
      return false;
    double X = A.asDouble(), Y = B.asDouble();
    if (Name == "<")
      return X < Y;
    if (Name == ">")
      return X > Y;
    if (Name == "=<")
      return X <= Y;
    if (Name == ">=")
      return X >= Y;
    if (Name == "=:=")
      return X == Y;
    return X != Y;
  }

  if (Name == "=" && S)
    return unify(S->arg(0), S->arg(1), Env, &UStats);
  if (Name == "\\=" && S) {
    BindingEnv::Mark M = Env.mark();
    bool Ok = unify(S->arg(0), S->arg(1), Env, &UStats);
    Env.undoTo(M);
    return !Ok;
  }
  if (Name == "==" && S)
    return termsEqual(S->arg(0), S->arg(1));
  if (Name == "\\==" && S)
    return !termsEqual(S->arg(0), S->arg(1));

  if (S && S->arity() == 1) {
    const Term *A = deref(S->arg(0));
    if (Name == "var")
      return A->isVariable();
    if (Name == "nonvar")
      return !A->isVariable();
    if (Name == "atom")
      return A->isAtom();
    if (Name == "number")
      return A->isNumber();
    if (Name == "integer")
      return A->isInt();
    if (Name == "float")
      return A->isFloat();
    if (Name == "atomic")
      return A->isAtomic();
    if (Name == "is_list") {
      std::vector<const Term *> Elements;
      return collectListElements(A, Symbols, Elements);
    }
    if (Name == "write")
      return true; // output is discarded in benchmark runs
  }

  if (Name == "length" && S) {
    const Term *L = deref(S->arg(0));
    const Term *N = deref(S->arg(1));
    if (!L->isVariable()) {
      int64_t Count = 0;
      const Term *T = L;
      while (isCons(T, Symbols)) {
        ++Count;
        T = deref(cast<StructTerm>(deref(T))->arg(1));
      }
      if (!isNil(T, Symbols))
        return false;
      return unify(N, Arena.makeInt(Count), Env, &UStats);
    }
    if (const IntTerm *NI = dynCast<IntTerm>(N)) {
      if (NI->value() < 0)
        return false;
      std::vector<const Term *> Elements;
      for (int64_t I = 0; I != NI->value(); ++I)
        Elements.push_back(Arena.makeVariable());
      return unify(L, Arena.makeList(Elements), Env, &UStats);
    }
    return false;
  }

  if (Name == "functor" && S) {
    const Term *T = deref(S->arg(0));
    if (const StructTerm *ST = dynCast<StructTerm>(T)) {
      return unify(S->arg(1), Arena.makeAtom(ST->name()), Env, &UStats) &&
             unify(S->arg(2), Arena.makeInt(ST->arity()), Env, &UStats);
    }
    if (!T->isVariable())
      return unify(S->arg(1), T, Env, &UStats) &&
             unify(S->arg(2), Arena.makeInt(0), Env, &UStats);
    return false;
  }
  if (Name == "arg" && S) {
    const IntTerm *I = dynCast<IntTerm>(deref(S->arg(0)));
    const StructTerm *T = dynCast<StructTerm>(deref(S->arg(1)));
    if (!I || !T || I->value() < 1 ||
        I->value() > static_cast<int64_t>(T->arity()))
      return false;
    return unify(S->arg(2), T->arg(static_cast<unsigned>(I->value() - 1)),
                 Env, &UStats);
  }

  if (Name == "$grain_leq" && S && S->arity() == 3) {
    ++Counters.GrainTests;
    const Term *T = deref(S->arg(0));
    const IntTerm *K = dynCast<IntTerm>(deref(S->arg(1)));
    const AtomTerm *MA = dynCast<AtomTerm>(deref(S->arg(2)));
    if (!K || !MA)
      return false;
    const std::string &MName = Symbols.text(MA->name());
    int64_t Size = 0;
    double TraversalCost = 0;
    if (MName == "value") {
      Number V;
      if (!evalArith(T, V))
        return false; // unknown size: treat as > K (stay parallel)
      Size = static_cast<int64_t>(V.asDouble());
    } else if (MName == "length") {
      const Term *L = T;
      while (isCons(L, Symbols)) {
        ++Size;
        L = deref(cast<StructTerm>(deref(L))->arg(1));
      }
      TraversalCost =
          Options.Weights.SizePerElement * static_cast<double>(Size);
    } else {
      std::optional<int64_t> GS =
          groundSize(T, MName == "depth" ? MeasureKind::TermDepth
                                         : MeasureKind::TermSize,
                     Symbols);
      if (!GS)
        return false;
      Size = *GS;
      TraversalCost =
          Options.Weights.SizePerElementDeep * static_cast<double>(Size);
    }
    charge(Options.Weights.GrainTest + TraversalCost);
    return Size <= K->value();
  }

  return false;
}
