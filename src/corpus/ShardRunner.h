//===- corpus/ShardRunner.h - Multi-process sharded batch analysis --------===//
//
// Part of GranLog; see DESIGN.md "Generated corpus & sharded batch".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shards a corpus batch across worker *processes*: shard S analyzes every
/// program whose corpus index is congruent to S, all shards share one
/// persistent solver-cache directory (atomic save + live-wins read-merge-
/// write, so concurrent flushes converge on the union), and each shard
/// reports its per-program results as JSON over a temp file that the
/// parent merges back into corpus order.
///
/// Everything the merged result exposes is deterministic for a fixed
/// corpus: per-program report fingerprints are content hashes (FNV-1a of
/// the analysis report + provenance text), so two sharded runs — at any
/// shard/job count, warm or cold cache — produce byte-identical
/// corpusReportText.  Timings are reported separately and never feed the
/// deterministic side.
///
/// On platforms without fork() (or with Shards <= 1) the batch runs
/// in-process; results are identical, only the isolation differs.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_CORPUS_SHARDRUNNER_H
#define GRANLOG_CORPUS_SHARDRUNNER_H

#include "corpus/Harness.h"
#include "program/Generator.h"
#include "support/Histogram.h"

#include <string>
#include <vector>

namespace granlog {

/// Configuration of one sharded batch run.
struct ShardConfig {
  unsigned Shards = 1; ///< worker processes (<=1: in-process)
  unsigned Jobs = 1;   ///< analysis threads per shard
  CostMetric Metric = CostMetric::resolutions();
  double OverheadW = 48.0;
  /// Per-benchmark resource limits (all-zero = unbudgeted).
  BudgetLimits Budget{};
  /// Shared persistent solver-cache directory ("" = in-memory caches).
  /// All shards load and save <CacheDir>/solver-cache.json concurrently;
  /// this is safe by construction (unique temp names + read-merge-write).
  std::string CacheDir;
  /// Where shard result files go; "" uses a fresh directory under the
  /// system temp path, removed after the merge.
  std::string WorkDir;
  /// Stress mode: every shard analyzes the *full* corpus instead of its
  /// slice, maximizing cache-file contention; the merged result keeps
  /// shard 0's program results plus every shard's corpus fingerprint so
  /// tests can assert cross-shard agreement.
  bool Overlap = false;
};

/// One program's merged result (the deterministic projection of
/// BatchAnalysis: content fingerprint instead of report text, so merged
/// results stay cheap at 10k+ programs).
struct ShardProgramResult {
  std::string Name;
  bool Ok = false;
  /// fnv1a64 of Report + '\0' + ExplainAll as 16 hex digits ("" when the
  /// program failed to analyze).
  std::string FingerprintHex;
  double Seconds = 0;
  uint64_t Degradations = 0;
  std::string Error; ///< load/analysis diagnostic when !Ok
};

/// One shard worker that did not deliver its result the normal way: it
/// crashed, exited nonzero, or left no readable result file.  The parent
/// re-runs the shard's slice in-process exactly once (Retried), so a
/// crashed worker costs latency, never coverage.
struct ShardFailure {
  unsigned Shard = 0;
  std::string Reason;
  bool Retried = false;
};

/// Merged results of a sharded batch.
struct ShardBatchResult {
  std::vector<ShardProgramResult> Programs; ///< corpus order
  unsigned Shards = 1;
  bool Forked = false; ///< ran as separate worker processes
  size_t Failures = 0; ///< programs with !Ok
  /// Summed solver-cache traffic across shards (entries: max per shard —
  /// each process has its own in-memory map).
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t DiskHits = 0;
  size_t CacheEntries = 0;
  double WallSeconds = 0; ///< whole sharded run, load-to-merge
  /// Per-program analysis latency (one sample per program).
  LatencyHistogram Latency;
  /// First cache warning ("" when clean).
  std::string Warning;
  /// Every shard worker that failed to deliver (one entry per incident,
  /// not last-wins): who, why, and whether the in-process retry ran.
  std::vector<ShardFailure> ShardFailures;
  /// Overlap mode only: each shard's corpus fingerprint, for convergence
  /// assertions; all entries must agree.
  std::vector<std::string> ShardFingerprints;
};

/// BenchmarkDef views over generated programs.  The defs alias the
/// programs' source strings and goal metadata: \p Programs must outlive
/// them and not reallocate.
std::vector<BenchmarkDef>
generatedBenchmarks(const std::vector<GeneratedProgram> &Programs);

/// Content fingerprint of one analysis: fnv1a64(Report + '\0' +
/// ExplainAll).  Byte-identical reports at any job count make this stable
/// across schedules, platforms and processes.
uint64_t reportFingerprint(const BatchAnalysis &A);

/// Deterministic corpus report: one "name fingerprint status" line per
/// program plus a combined corpus fingerprint.  Contains no timings; two
/// runs over the same corpus must produce byte-identical text.
std::string corpusReportText(const std::vector<ShardProgramResult> &Programs);

/// Runs \p Corpus through analyzeCorpusBatch sharded per \p Config and
/// merges the per-shard results into corpus order.
ShardBatchResult runShardedBatch(const std::vector<BenchmarkDef> &Corpus,
                                 const ShardConfig &Config);

} // namespace granlog

#endif // GRANLOG_CORPUS_SHARDRUNNER_H
