//===- corpus/Corpus.cpp - Benchmark sources and goal builders ------------===//
#include <cmath>

#include "corpus/Corpus.h"

using namespace granlog;

//===----------------------------------------------------------------------===//
// Program sources
//===----------------------------------------------------------------------===//

namespace {

// Shared library text: even/odd list splitting and append, with modes.
// Each benchmark source is self-contained, so this text is spliced in.
#define LIST_LIB                                                             \
  ":- mode(split(i, o, o)).\n"                                               \
  "split([], [], []).\n"                                                     \
  "split([X|T], [X|A], B) :- split(T, B, A).\n"                              \
  ":- mode(append(i, i, o)).\n"                                              \
  "append([], L, L).\n"                                                      \
  "append([H|T], L, [H|R]) :- append(T, L, R).\n"

const char *FibSource = R"(
% Doubly recursive Fibonacci (paper Section 5).
:- mode(fib(i, o)).
:- measure(fib(value, value)).
fib(0, 0).
fib(1, 1).
fib(M, N) :-
    M > 1,
    M1 is M - 1, M2 is M - 2,
    ( fib(M1, N1) & fib(M2, N2) ),
    N is N1 + N2.
)";

const char *HanoiSource = R"(
% Towers of Hanoi producing the move list.
:- mode(hanoi(i, i, i, i, o)).
:- measure(hanoi(value, void, void, void, length)).
hanoi(0, _, _, _, []).
hanoi(N, A, B, C, M) :-
    N > 0,
    N1 is N - 1,
    ( hanoi(N1, A, C, B, M1) & hanoi(N1, B, A, C, M2) ),
    append(M1, [mv(A, C)|M2], M).
)" LIST_LIB;

const char *QuickSortSource = R"(
% Quicksort with parallel recursive calls (paper introduction example).
:- mode(qsort(i, o)).
qsort([], []).
qsort([H|T], S) :-
    part(T, H, L, G),
    ( qsort(L, SL) & qsort(G, SG) ),
    append(SL, [H|SG], S).
:- mode(part(i, i, o, o)).
part([], _, [], []).
part([E|L], M, [E|U1], U2) :- E =< M, part(L, M, U1, U2).
part([E|L], M, U1, [E|U2]) :- E > M, part(L, M, U1, U2).
)" LIST_LIB;

const char *MergeSortSource = R"(
% Mergesort; merge/3 consumes its two lists alternately, which is outside
% the one-variable difference equations of the analysis, so its cost and
% output size carry trust assertions (upper bounds; cf. CiaoPP trust).
:- mode(msort(i, o)).
msort([], []).
msort([X], [X]).
msort([A,B|T], S) :-
    split([A,B|T], L, R),
    ( msort(L, SL) & msort(R, SR) ),
    merge(SL, SR, S).
:- mode(merge(i, i, o)).
:- measure(merge(length, length, length)).
:- trust_cost(merge/3, n1 + n2 + 1).
:- trust_size(merge/3, 3, n1 + n2).
merge([], L, L).
merge([H|T], [], [H|T]).
merge([H1|T1], [H2|T2], [H1|R]) :- H1 =< H2, merge(T1, [H2|T2], R).
merge([H1|T1], [H2|T2], [H2|R]) :- H1 > H2, merge([H1|T1], T2, R).
)" LIST_LIB;

const char *ConsistencySource = R"(
% Constraint-consistency sweep: N binary constraints checked
% divide-and-conquer style (reconstruction; see DESIGN.md).
:- mode(consistency(i)).
consistency([]).
consistency([C]) :- check(C).
consistency([A,B|T]) :-
    split([A,B|T], L, R),
    ( consistency(L) & consistency(R) ).
:- mode(check(i)).
check(c(X, Y)) :-
    Z is X * 3 + Y * 2,
    Z >= 0,
    W is Z mod 7,
    V is W * W + Z,
    V >= W.
)" LIST_LIB;

const char *DoubleSumSource = R"(
% double-sum: sum of 1..N by the doubling identity
%   sum(N) = 2 sum(N/2) + (N/2)^2   for even N
% (reconstruction; the input 2048 is a power of two).
:- mode(dsum(i, o)).
:- measure(dsum(value, value)).
dsum(1, 1).
dsum(N, S) :-
    N > 1,
    H is N // 2,
    ( dsum(H, S1) & dsum(H, S2) ),
    Q is H * H,
    S is S1 + S2 + Q.
)";

const char *FftSource = R"(
% Radix-2 Cooley-Tukey FFT over c(Re, Im) lists.  Twiddle factors are
% threaded incrementally so that the combine loop's numeric arguments are
% untracked (void) constants for the analysis.
:- mode(fft(i, o)).
fft([X], [X]).
fft([X,Y|T], F) :-
    split([X,Y|T], E, O),
    length([X,Y|T], N),
    ( fft(E, FE) & fft(O, FO) ),
    A is -2.0 * pi / N,
    Sr is cos(A), Si is sin(A),
    combine(FE, FO, 1.0, 0.0, Sr, Si, Hi, Lo),
    append(Hi, Lo, F).
:- mode(combine(i, i, i, i, i, i, o, o)).
:- measure(combine(length, length, void, void, void, void, length, length)).
combine([], [], _, _, _, _, [], []).
combine([c(Er,Ei)|Es], [c(Or,Oi)|Os], Wr, Wi, Sr, Si,
        [c(Ar,Ai)|As], [c(Br,Bi)|Bs]) :-
    Tr is Wr * Or - Wi * Oi,
    Ti is Wr * Oi + Wi * Or,
    Ar is Er + Tr, Ai is Ei + Ti,
    Br is Er - Tr, Bi is Ei - Ti,
    W2r is Wr * Sr - Wi * Si,
    W2i is Wr * Si + Wi * Sr,
    combine(Es, Os, W2r, W2i, Sr, Si, As, Bs).
)" LIST_LIB;

const char *FlattenSource = R"(
% Flattening a binary leaf tree into the list of its leaf values.  Grains
% are uniformly tiny and the grain test must traverse the term (term-size
% measure), which is how the paper's negative result arises.
:- mode(flatten(i, o)).
:- measure(flatten(size, length)).
flatten(leaf(X), [X]).
flatten(node(L, R), F) :-
    ( flatten(L, F1) & flatten(R, F2) ),
    append(F1, F2, F).
)" LIST_LIB;

const char *MatrixSource = R"(
% Dense matrix multiplication; the second matrix is given transposed
% (columns as rows).  Rows are spawned; inner products are guarded.
:- mode(mmul(i, i, o)).
mmul([], _, []).
mmul([R|Rs], Cols, [CR|CRs]) :-
    ( mrow(R, Cols, CR) & mmul(Rs, Cols, CRs) ).
:- mode(mrow(i, i, o)).
mrow(_, [], []).
mrow(R, [C|Cs], [X|Xs]) :-
    ( ip(R, C, 0, X) & mrow(R, Cs, Xs) ).
:- mode(ip(i, i, i, o)).
:- measure(ip(length, length, value, value)).
ip([], [], A, A).
ip([X|Xs], [Y|Ys], A, S) :-
    A1 is A + X * Y,
    ip(Xs, Ys, A1, S).
)";

const char *PolySource = R"(
% Point-in-polygon (ray crossing) for a batch of points against a fixed
% polygon (reconstruction; see DESIGN.md).
:- mode(poly_inclusion(i, i, o)).
poly_inclusion([], _, []).
poly_inclusion([P], Poly, [R]) :- inside(P, Poly, R).
poly_inclusion([P,Q|Ps], Poly, Rs) :-
    split([P,Q|Ps], A, B),
    ( poly_inclusion(A, Poly, R1) & poly_inclusion(B, Poly, R2) ),
    append(R1, R2, Rs).
:- mode(inside(i, i, o)).
inside(pt(X, Y), Edges, R) :-
    count_crossings(Edges, X, Y, C),
    R is C mod 2.
:- mode(count_crossings(i, i, i, o)).
:- measure(count_crossings(length, value, value, value)).
count_crossings([], _, _, 0).
count_crossings([E], X, Y, C) :-
    ( crosses(E, X, Y) -> C = 1 ; C = 0 ).
count_crossings([E1,E2|Es], X, Y, C) :-
    split([E1,E2|Es], A, B),
    ( count_crossings(A, X, Y, C1) & count_crossings(B, X, Y, C2) ),
    C is C1 + C2.
:- mode(crosses(i, i, i)).
crosses(e(X1, Y1, X2, Y2), PX, PY) :-
    straddles(Y1, Y2, PY),
    T is (PY - Y1) * (X2 - X1) - (PX - X1) * (Y2 - Y1),
    rightside(Y1, Y2, T).
:- mode(straddles(i, i, i)).
straddles(Y1, Y2, PY) :- Y1 =< PY, PY < Y2.
straddles(Y1, Y2, PY) :- Y2 =< PY, PY < Y1.
:- mode(rightside(i, i, i)).
rightside(Y1, Y2, T) :- Y2 > Y1, T > 0.
rightside(Y1, Y2, T) :- Y2 < Y1, T < 0.
)" LIST_LIB;

const char *TreeTraversalSource = R"(
% Sums the values at the leaves of a binary tree of the given depth.
:- mode(tsum(i, o)).
:- measure(tsum(size, value)).
tsum(leaf(V), V).
tsum(node(L, R), S) :-
    ( tsum(L, S1) & tsum(R, S2) ),
    S is S1 + S2.
)";

const char *Lr1SetSource = R"(
% LR(1)-item-set-closure-shaped workload: expands the derivations of the
% three nonterminals of a small cyclic grammar to a bounded depth
% (reconstruction; see DESIGN.md).
:- mode(lr1_set(i, o)).
:- measure(lr1_set(value, length)).
lr1_set(Depth, Set) :-
    ( expand(Depth, e, S1) & expand(Depth, t, S2) & expand(Depth, f, S3) ),
    append(S1, S2, S12),
    append(S12, S3, Set).
:- mode(expand(i, i, o)).
:- measure(expand(value, void, length)).
expand(0, NT, [item(NT)]).
expand(D, NT, [item(NT)|Items]) :-
    D > 0,
    D1 is D - 1,
    next1(NT, A), next2(NT, B),
    ( expand(D1, A, I1) & expand(D1, B, I2) ),
    append(I1, I2, Items).
:- mode(next1(i, o)).
next1(e, t). next1(t, f). next1(f, e).
:- mode(next2(i, o)).
next2(e, f). next2(t, e). next2(f, t).
)" LIST_LIB;

//===----------------------------------------------------------------------===//
// Goal builders
//===----------------------------------------------------------------------===//

/// Deterministic pseudo-random values (LCG) so runs are reproducible.
class Lcg {
public:
  explicit Lcg(uint64_t Seed) : State(Seed) {}
  int64_t next(int64_t Bound) {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<int64_t>((State >> 33) % static_cast<uint64_t>(Bound));
  }

private:
  uint64_t State;
};

const Term *randomIntList(TermArena &A, int N, int Bound, uint64_t Seed) {
  Lcg Rng(Seed);
  std::vector<const Term *> Elements;
  Elements.reserve(N);
  for (int I = 0; I != N; ++I)
    Elements.push_back(A.makeInt(Rng.next(Bound)));
  return A.makeList(Elements);
}

const Term *buildTree(TermArena &A, int Leaves, Lcg &Rng, bool Skew) {
  if (Leaves <= 1)
    return A.makeStruct("leaf", {A.makeInt(Rng.next(100))});
  // Random split for a moderately unbalanced tree (Skew) or halving.
  int Left = Skew ? 1 + static_cast<int>(Rng.next(Leaves - 1)) : Leaves / 2;
  return A.makeStruct("node", {buildTree(A, Left, Rng, Skew),
                               buildTree(A, Leaves - Left, Rng, Skew)});
}

const Term *fullTree(TermArena &A, int Depth, Lcg &Rng) {
  if (Depth <= 0)
    return A.makeStruct("leaf", {A.makeInt(Rng.next(10))});
  return A.makeStruct(
      "node", {fullTree(A, Depth - 1, Rng), fullTree(A, Depth - 1, Rng)});
}

const Term *complexList(TermArena &A, int N, uint64_t Seed) {
  Lcg Rng(Seed);
  std::vector<const Term *> Elements;
  for (int I = 0; I != N; ++I)
    Elements.push_back(A.makeStruct(
        "c", {A.makeFloat(static_cast<double>(Rng.next(200)) / 10.0 - 10.0),
              A.makeFloat(0.0)}));
  return A.makeList(Elements);
}

const Term *matrix(TermArena &A, int N, uint64_t Seed) {
  Lcg Rng(Seed);
  std::vector<const Term *> Rows;
  for (int I = 0; I != N; ++I)
    Rows.push_back(randomIntList(A, N, 10, Seed * 31 + I));
  return A.makeList(Rows);
}

/// A convex-ish 20-gon as e(X1,Y1,X2,Y2) edges on a 0..100 grid.
const Term *polygon(TermArena &A, int Vertices) {
  std::vector<const Term *> Edges;
  std::vector<std::pair<int, int>> Pts;
  for (int I = 0; I != Vertices; ++I) {
    double Angle = 2.0 * 3.14159265358979 * I / Vertices;
    Pts.push_back({50 + static_cast<int>(40 * std::cos(Angle)),
                   50 + static_cast<int>(40 * std::sin(Angle))});
  }
  for (int I = 0; I != Vertices; ++I) {
    auto [X1, Y1] = Pts[I];
    auto [X2, Y2] = Pts[(I + 1) % Vertices];
    Edges.push_back(A.makeStruct("e", {A.makeInt(X1), A.makeInt(Y1),
                                       A.makeInt(X2), A.makeInt(Y2)}));
  }
  return A.makeList(Edges);
}

std::vector<BenchmarkDef> buildCorpus() {
  std::vector<BenchmarkDef> Corpus;

  Corpus.push_back({"consistency", ConsistencySource, 500,
                    "N binary constraint checks, divide-and-conquer",
                    [](TermArena &A, int N) -> const Term * {
                      Lcg Rng(11);
                      std::vector<const Term *> Cs;
                      for (int I = 0; I != N; ++I)
                        Cs.push_back(A.makeStruct(
                            "c", {A.makeInt(Rng.next(50)),
                                  A.makeInt(Rng.next(50))}));
                      return A.makeStruct("consistency", {A.makeList(Cs)});
                    }});

  Corpus.push_back({"fib", FibSource, 15, "doubly recursive Fibonacci",
                    [](TermArena &A, int N) -> const Term * {
                      return A.makeStruct(
                          "fib", {A.makeInt(N), A.makeVariable("F")});
                    }});

  Corpus.push_back({"hanoi", HanoiSource, 6,
                    "Towers of Hanoi move list for N discs",
                    [](TermArena &A, int N) -> const Term * {
                      return A.makeStruct(
                          "hanoi",
                          {A.makeInt(N), A.makeAtom("a"), A.makeAtom("b"),
                           A.makeAtom("c"), A.makeVariable("M")});
                    }});

  Corpus.push_back({"quick_sort", QuickSortSource, 75,
                    "quicksort of N pseudo-random integers",
                    [](TermArena &A, int N) -> const Term * {
                      return A.makeStruct(
                          "qsort", {randomIntList(A, N, 1000, 7),
                                    A.makeVariable("S")});
                    }});

  Corpus.push_back({"lr1_set", Lr1SetSource, 3,
                    "LR(1) item-set closure to depth N (reconstruction)",
                    [](TermArena &A, int N) -> const Term * {
                      return A.makeStruct(
                          "lr1_set", {A.makeInt(N), A.makeVariable("S")});
                    }});

  Corpus.push_back({"double_sum", DoubleSumSource, 2048,
                    "sum of 1..N by doubling decomposition",
                    [](TermArena &A, int N) -> const Term * {
                      return A.makeStruct(
                          "dsum", {A.makeInt(N), A.makeVariable("S")});
                    }});

  Corpus.push_back({"fft", FftSource, 256,
                    "radix-2 FFT of N complex points",
                    [](TermArena &A, int N) -> const Term * {
                      return A.makeStruct(
                          "fft", {complexList(A, N, 23),
                                  A.makeVariable("F")});
                    }});

  Corpus.push_back({"flatten", FlattenSource, 536,
                    "flattening a leaf tree with N leaves",
                    [](TermArena &A, int N) -> const Term * {
                      Lcg Rng(5);
                      return A.makeStruct(
                          "flatten", {buildTree(A, N, Rng, /*Skew=*/true),
                                      A.makeVariable("F")});
                    }});

  Corpus.push_back({"matrix_multi", MatrixSource, 8,
                    "N x N integer matrix product",
                    [](TermArena &A, int N) -> const Term * {
                      return A.makeStruct(
                          "mmul", {matrix(A, N, 3), matrix(A, N, 17),
                                   A.makeVariable("C")});
                    }});

  Corpus.push_back({"merge_sort", MergeSortSource, 128,
                    "mergesort of N pseudo-random integers",
                    [](TermArena &A, int N) -> const Term * {
                      return A.makeStruct(
                          "msort", {randomIntList(A, N, 1000, 13),
                                    A.makeVariable("S")});
                    }});

  Corpus.push_back({"poly_inclusion", PolySource, 30,
                    "N points tested against a fixed 20-gon",
                    [](TermArena &A, int N) -> const Term * {
                      Lcg Rng(29);
                      std::vector<const Term *> Pts;
                      for (int I = 0; I != N; ++I)
                        Pts.push_back(A.makeStruct(
                            "pt", {A.makeInt(Rng.next(100)),
                                   A.makeInt(Rng.next(100))}));
                      return A.makeStruct(
                          "poly_inclusion",
                          {A.makeList(Pts), polygon(A, 20),
                           A.makeVariable("R")});
                    }});

  Corpus.push_back({"tree_traversal", TreeTraversalSource, 8,
                    "leaf sum of a full binary tree of depth N",
                    [](TermArena &A, int N) -> const Term * {
                      Lcg Rng(41);
                      return A.makeStruct(
                          "tsum", {fullTree(A, N, Rng),
                                   A.makeVariable("S")});
                    }});

  return Corpus;
}

} // namespace

const std::vector<BenchmarkDef> &granlog::benchmarkCorpus() {
  static const std::vector<BenchmarkDef> Corpus = buildCorpus();
  return Corpus;
}

const BenchmarkDef *granlog::findBenchmark(std::string_view Name) {
  for (const BenchmarkDef &B : benchmarkCorpus())
    if (B.Name == Name)
      return &B;
  return nullptr;
}

std::vector<const BenchmarkDef *> granlog::table2Benchmarks() {
  std::vector<const BenchmarkDef *> Result;
  for (const char *Name : {"consistency", "fib", "hanoi", "quick_sort"})
    Result.push_back(findBenchmark(Name));
  return Result;
}
