//===- corpus/Harness.cpp --------------------------------------------------===//

#include "corpus/Harness.h"

using namespace granlog;

InterpOptions granlog::interpOptionsFor(const MachineConfig &M) {
  InterpOptions Options;
  Options.Weights.GrainTest = M.GrainTestCost;
  Options.Weights.SizePerElement =
      M.MaintainedSizes ? 0.0 : M.SizeCostPerElement;
  Options.Weights.SizePerElementDeep = M.SizeCostPerElement;
  return Options;
}

BenchmarkRun granlog::runBenchmark(const BenchmarkDef &B, int Input,
                                   const HarnessConfig &Config) {
  BenchmarkRun Run;
  TermArena Arena;
  Diagnostics Diags;
  std::optional<Program> P0 = loadProgram(B.Source, Arena, Diags);
  if (!P0) {
    Run.AnalysisReport = "load failed: " + Diags.str();
    return Run;
  }

  GranularityAnalyzer GA(
      *P0, AnalyzerOptions{Config.Metric, Config.effectiveW()});
  GA.run();
  if (Config.ThresholdOverride >= 0)
    GA.overrideThresholds(Config.ThresholdOverride);
  Run.AnalysisReport = GA.report();

  Program P1 =
      applyGranularityControl(*P0, GA, &Run.Stats, Config.Transform);

  InterpOptions Options = interpOptionsFor(Config.Machine);

  {
    Interpreter I0(*P0, Arena, Options);
    Run.Ok0 = I0.solve(B.BuildGoal(Arena, Input));
    Run.Counters0 = I0.counters();
    std::unique_ptr<CostNode> Tree = I0.takeTree();
    if (Tree)
      Run.Sim0 = simulate(*Tree, Config.Machine);
  }
  {
    Interpreter I1(P1, Arena, Options);
    Run.Ok1 = I1.solve(B.BuildGoal(Arena, Input));
    Run.Counters1 = I1.counters();
    std::unique_ptr<CostNode> Tree = I1.takeTree();
    if (Tree)
      Run.Sim1 = simulate(*Tree, Config.Machine);
  }
  return Run;
}
