//===- corpus/Harness.cpp --------------------------------------------------===//

#include "corpus/Harness.h"

#include "diffeq/SolverCache.h"
#include "support/Json.h"
#include "support/Profile.h"
#include "support/ThreadPool.h"
#include "support/Tracer.h"

#include <chrono>
#include <filesystem>
#include <system_error>

using namespace granlog;

InterpOptions granlog::interpOptionsFor(const MachineConfig &M) {
  InterpOptions Options;
  Options.Weights.GrainTest = M.GrainTestCost;
  Options.Weights.SizePerElement =
      M.MaintainedSizes ? 0.0 : M.SizeCostPerElement;
  Options.Weights.SizePerElementDeep = M.SizeCostPerElement;
  return Options;
}

BenchmarkRun granlog::runBenchmark(const BenchmarkDef &B, int Input,
                                   const HarnessConfig &Config) {
  BenchmarkRun Run;
  TermArena Arena;
  Diagnostics Diags;
  std::optional<Program> P0 = loadProgram(B.Source, Arena, Diags);
  if (!P0) {
    Run.AnalysisReport = "load failed: " + Diags.str();
    return Run;
  }

  GranularityAnalyzer GA(
      *P0, AnalyzerOptions{Config.Metric, Config.effectiveW()});
  GA.run();
  if (Config.ThresholdOverride >= 0)
    GA.overrideThresholds(Config.ThresholdOverride);
  Run.AnalysisReport = GA.report();

  Program P1 =
      applyGranularityControl(*P0, GA, &Run.Stats, Config.Transform);

  InterpOptions Options = interpOptionsFor(Config.Machine);

  {
    Interpreter I0(*P0, Arena, Options);
    Run.Ok0 = I0.solve(B.BuildGoal(Arena, Input));
    Run.Counters0 = I0.counters();
    std::unique_ptr<CostNode> Tree = I0.takeTree();
    if (Tree)
      Run.Sim0 = simulate(*Tree, Config.Machine);
  }
  {
    Interpreter I1(P1, Arena, Options);
    Run.Ok1 = I1.solve(B.BuildGoal(Arena, Input));
    Run.Counters1 = I1.counters();
    std::unique_ptr<CostNode> Tree = I1.takeTree();
    if (Tree)
      Run.Sim1 = simulate(*Tree, Config.Machine);
  }
  return Run;
}

namespace {

/// Analyzes one corpus benchmark into \p Out.  Everything mutable is
/// benchmark-local (arena, diagnostics, stats registry, budget); only the
/// solver cache may be shared, and it is internally synchronized.
void analyzeOneImpl(const BenchmarkDef &B, const BatchConfig &Config,
                    SolverCache *Shared, uint32_t TraceProg,
                    BatchAnalysis &Out) {
  TermArena Arena;
  Diagnostics Diags;
  std::optional<Budget> RunBudget;
  if (Config.Budget.any())
    RunBudget.emplace(Config.Budget);
  std::optional<Program> P =
      loadProgram(B.Source, Arena, Diags,
                  RunBudget ? &*RunBudget : nullptr);
  if (!P) {
    Out.Report = "load failed: " + Diags.str();
    Out.Error = "load failed: " + Diags.str();
    return;
  }
  StatsRegistry Stats;
  AnalyzerOptions Options{Config.Metric, Config.OverheadW};
  Options.Cache = Shared;
  if (Config.CollectStats)
    Options.Stats = &Stats;
  if (RunBudget)
    Options.Budget = &*RunBudget;
  Options.Trace = Config.Trace;
  Options.TraceProgram = TraceProg;
  Options.Bounds = Config.Bounds;
  GranularityAnalyzer GA(*P, Options);
  GA.run();
  if (Config.Trace) {
    // Captured here (cheap, benchmark-local); the profile itself is
    // built from the trace snapshot only after the pool joins.
    Out.SccDeps = GA.sccDependencies();
    Out.SccNames = GA.sccLabels();
  }
  Out.Ok = true;
  Out.Report = GA.report();
  Out.ExplainAll = GA.explainAll();
  if (RunBudget)
    Out.Degradations = RunBudget->degradations().size();
  if (Config.CollectStats) {
    JsonWriter W;
    GA.writeJson(W);
    Out.StatsJson = W.take();
  }
}

/// Fault-isolation wrapper: an exception escaping one benchmark's load or
/// analysis becomes that benchmark's Error, never the batch's.
void analyzeOne(const BenchmarkDef &B, const BatchConfig &Config,
                SolverCache *Shared, uint32_t TraceProg,
                BatchAnalysis &Out) {
  auto Start = std::chrono::steady_clock::now();
  Out.Name = B.Name;
  TraceSpan Prog(Config.Trace, SpanKind::Program, TraceProg);
  try {
    analyzeOneImpl(B, Config, Shared, TraceProg, Out);
  } catch (const std::exception &E) {
    Out.Ok = false;
    Out.Error = std::string("exception: ") + E.what();
  } catch (...) {
    Out.Ok = false;
    Out.Error = "exception: unknown";
  }
  Out.Seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
}

} // namespace

BatchResult granlog::analyzeCorpusBatch(const BatchConfig &Config) {
  auto Start = std::chrono::steady_clock::now();
  const std::vector<BenchmarkDef> &Corpus =
      Config.Corpus ? *Config.Corpus : benchmarkCorpus();

  TraceSpan BatchSpan(Config.Trace, SpanKind::Batch);
  BatchResult Batch;
  Batch.Results.resize(Corpus.size());
  std::vector<uint32_t> ProgIds(Corpus.size(), Tracer::None);
  if (Config.Trace)
    for (size_t I = 0; I != Corpus.size(); ++I)
      ProgIds[I] = Config.Trace->registerProgram(Corpus[I].Name);
  std::unique_ptr<SolverCache> Shared;
  std::string CachePath;
  if (Config.ShareCache) {
    Shared = std::make_unique<SolverCache>();
    if (!Config.CacheDir.empty()) {
      std::error_code EC;
      std::filesystem::create_directories(Config.CacheDir, EC);
      CachePath = (std::filesystem::path(Config.CacheDir) /
                   "solver-cache.json")
                      .string();
      std::string Error;
      if (!Shared->loadFromFile(CachePath, &Error))
        Batch.CacheWarning = Error; // cold cache; replaced on save below
    }
  }

  if (Config.Jobs <= 1) {
    for (size_t I = 0; I != Corpus.size(); ++I)
      analyzeOne(Corpus[I], Config, Shared.get(), ProgIds[I],
                 Batch.Results[I]);
  } else {
    ThreadPool Pool(Config.Jobs);
    for (size_t I = 0; I != Corpus.size(); ++I)
      Pool.submit([I, &Corpus, &Config, &Shared, &Batch, &ProgIds] {
        analyzeOne(Corpus[I], Config, Shared.get(), ProgIds[I],
                   Batch.Results[I]);
      });
    Pool.wait();
  }

  if (Config.Trace) {
    // Profiles are built from one snapshot taken strictly after the pool
    // joined, so no worker is still appending to its ring.
    std::vector<SpanRecord> Spans = Config.Trace->snapshot();
    for (size_t I = 0; I != Corpus.size(); ++I) {
      BatchAnalysis &A = Batch.Results[I];
      TraceProfile P = buildProfile(Spans, ProgIds[I]);
      A.SccSpans = P.SccLatency.count();
      if (A.SccSpans) {
        A.SccP50Ns = P.SccLatency.percentileNs(0.50);
        A.SccP90Ns = P.SccLatency.percentileNs(0.90);
        A.SccP99Ns = P.SccLatency.percentileNs(0.99);
      }
      A.Profile = profileReport(P, A.SccDeps, A.SccNames);
    }
  }

  if (Shared) {
    Batch.CacheHits = Shared->hits();
    Batch.CacheMisses = Shared->misses();
    Batch.CacheEntries = Shared->entries();
    Batch.DiskHits = Shared->diskHits();
    if (!CachePath.empty()) {
      std::string Error;
      if (!Shared->saveToFile(CachePath, &Error) &&
          Batch.CacheWarning.empty())
        Batch.CacheWarning = Error;
    }
  }
  Batch.WallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - Start)
                          .count();
  return Batch;
}
