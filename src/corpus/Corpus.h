//===- corpus/Corpus.h - The benchmark programs ---------------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The twelve benchmarks of Table 1 of the paper, as Prolog sources with
/// "maximal parallelism" '&' annotations (every independent conjunction is
/// annotated — the paper's "parallel unless proven otherwise" philosophy),
/// plus C++ goal builders producing deterministic inputs of a given size.
///
/// Sources the paper does not print (consistency, LR(1)-set, double-sum,
/// flatten, matrix-multi, poly-inclusion, tree-traversal) are faithful
/// reconstructions of the benchmark families; see DESIGN.md Section 6.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_CORPUS_CORPUS_H
#define GRANLOG_CORPUS_CORPUS_H

#include "term/Term.h"

#include <functional>
#include <string>
#include <vector>

namespace granlog {

/// One benchmark: a program plus a goal builder.
struct BenchmarkDef {
  std::string Name;        ///< e.g. "fib"
  const char *Source;      ///< annotated Prolog source
  int DefaultInput;        ///< the paper's input parameter
  const char *Description; ///< one line
  /// Builds the query term for input parameter N.
  std::function<const Term *(TermArena &, int)> BuildGoal;
  /// Renders the paper-style label, e.g. "fib(15)".
  std::string label(int N) const {
    return Name + "(" + std::to_string(N) + ")";
  }
};

/// All benchmarks, in Table 1 order.
const std::vector<BenchmarkDef> &benchmarkCorpus();

/// Finds a benchmark by name; nullptr if unknown.
const BenchmarkDef *findBenchmark(std::string_view Name);

/// The subset used in Table 2 (the &-Prolog experiments):
/// consistency, fib, hanoi, quick_sort.
std::vector<const BenchmarkDef *> table2Benchmarks();

} // namespace granlog

#endif // GRANLOG_CORPUS_CORPUS_H
