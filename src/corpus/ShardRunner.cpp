//===- corpus/ShardRunner.cpp ---------------------------------------------===//

#include "corpus/ShardRunner.h"

#include "support/FaultInject.h"
#include "support/Io.h"
#include "support/Json.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>

#if !defined(_WIN32)
#include <sys/wait.h>
#include <unistd.h>
#define GRANLOG_HAVE_FORK 1
#endif

using namespace granlog;

std::vector<BenchmarkDef>
granlog::generatedBenchmarks(const std::vector<GeneratedProgram> &Programs) {
  std::vector<BenchmarkDef> Defs;
  Defs.reserve(Programs.size());
  for (const GeneratedProgram &G : Programs) {
    BenchmarkDef D;
    D.Name = G.Name;
    D.Source = G.Source.c_str();
    D.DefaultInput = G.DefaultInput;
    D.Description = schemaFamilyName(G.Family);
    const GeneratedProgram *GP = &G;
    D.BuildGoal = [GP](TermArena &A, int N) {
      return buildGeneratedGoal(*GP, A, N);
    };
    Defs.push_back(std::move(D));
  }
  return Defs;
}

uint64_t granlog::reportFingerprint(const BatchAnalysis &A) {
  std::string Blob;
  Blob.reserve(A.Report.size() + 1 + A.ExplainAll.size());
  Blob += A.Report;
  Blob += '\0';
  Blob += A.ExplainAll;
  return fnv1a64(Blob);
}

std::string granlog::corpusReportText(
    const std::vector<ShardProgramResult> &Programs) {
  std::string Text;
  for (const ShardProgramResult &P : Programs) {
    Text += P.Name;
    Text += ' ';
    Text += P.Ok ? P.FingerprintHex : std::string("failed");
    Text += " degradations=";
    Text += std::to_string(P.Degradations);
    Text += '\n';
  }
  Text += "corpus ";
  Text += hex64(fnv1a64(Text));
  Text += '\n';
  return Text;
}

namespace {

/// Indices of the programs shard \p S analyzes.
std::vector<size_t> shardSlice(size_t CorpusSize, unsigned Shards,
                               unsigned S, bool Overlap) {
  std::vector<size_t> Indices;
  for (size_t I = 0; I != CorpusSize; ++I)
    if (Overlap || I % Shards == S)
      Indices.push_back(I);
  return Indices;
}

struct ShardOutcome {
  std::vector<std::pair<size_t, ShardProgramResult>> Programs;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t DiskHits = 0;
  size_t CacheEntries = 0;
  std::string Warning;
};

/// Runs one shard's slice in the current process.
ShardOutcome runShardSlice(const std::vector<BenchmarkDef> &Corpus,
                           const std::vector<size_t> &Indices,
                           const ShardConfig &Config) {
  std::vector<BenchmarkDef> Slice;
  Slice.reserve(Indices.size());
  for (size_t I : Indices)
    Slice.push_back(Corpus[I]);

  BatchConfig BC;
  BC.Metric = Config.Metric;
  BC.OverheadW = Config.OverheadW;
  BC.Jobs = Config.Jobs;
  BC.Budget = Config.Budget;
  BC.CollectStats = false; // fingerprints cover report + provenance
  BC.Corpus = &Slice;
  BC.CacheDir = Config.CacheDir;
  BatchResult Batch = analyzeCorpusBatch(BC);

  ShardOutcome Out;
  Out.CacheHits = Batch.CacheHits;
  Out.CacheMisses = Batch.CacheMisses;
  Out.DiskHits = Batch.DiskHits;
  Out.CacheEntries = Batch.CacheEntries;
  Out.Warning = Batch.CacheWarning;
  for (size_t I = 0; I != Batch.Results.size(); ++I) {
    const BatchAnalysis &A = Batch.Results[I];
    ShardProgramResult R;
    R.Name = A.Name;
    R.Ok = A.Ok;
    if (A.Ok)
      R.FingerprintHex = hex64(reportFingerprint(A));
    R.Seconds = A.Seconds;
    R.Degradations = A.Degradations;
    R.Error = A.Error;
    Out.Programs.emplace_back(Indices[I], std::move(R));
  }
  return Out;
}

std::string shardResultJson(const ShardOutcome &Out) {
  JsonWriter W;
  W.beginObject();
  W.key("cache_hits");
  W.value(Out.CacheHits);
  W.key("cache_misses");
  W.value(Out.CacheMisses);
  W.key("disk_hits");
  W.value(Out.DiskHits);
  W.key("cache_entries");
  W.value(static_cast<uint64_t>(Out.CacheEntries));
  W.key("warning");
  W.value(Out.Warning);
  W.key("programs");
  W.beginArray();
  for (const auto &[Index, R] : Out.Programs) {
    W.beginObject();
    W.key("index");
    W.value(static_cast<uint64_t>(Index));
    W.key("name");
    W.value(R.Name);
    W.key("ok");
    W.value(R.Ok);
    W.key("fp");
    W.value(R.FingerprintHex);
    W.key("seconds");
    W.value(R.Seconds);
    W.key("degradations");
    W.value(R.Degradations);
    W.key("error");
    W.value(R.Error);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.take();
}

bool parseShardResult(const std::string &Text, ShardOutcome &Out) {
  std::optional<JsonValue> Doc = jsonParse(Text);
  if (!Doc || !Doc->isObject())
    return false;
  std::optional<int64_t> Hits = Doc->intMember("cache_hits");
  std::optional<int64_t> Misses = Doc->intMember("cache_misses");
  std::optional<int64_t> Disk = Doc->intMember("disk_hits");
  std::optional<int64_t> Entries = Doc->intMember("cache_entries");
  std::optional<std::string> Warning = Doc->stringMember("warning");
  const JsonValue *Programs = Doc->find("programs");
  if (!Hits || !Misses || !Disk || !Entries || !Warning || !Programs ||
      !Programs->isArray())
    return false;
  Out.CacheHits = static_cast<uint64_t>(*Hits);
  Out.CacheMisses = static_cast<uint64_t>(*Misses);
  Out.DiskHits = static_cast<uint64_t>(*Disk);
  Out.CacheEntries = static_cast<size_t>(*Entries);
  Out.Warning = std::move(*Warning);
  for (const JsonValue &PV : Programs->array()) {
    if (!PV.isObject())
      return false;
    std::optional<int64_t> Index = PV.intMember("index");
    std::optional<std::string> Name = PV.stringMember("name");
    std::optional<bool> Ok = PV.boolMember("ok");
    std::optional<std::string> Fp = PV.stringMember("fp");
    std::optional<int64_t> Degr = PV.intMember("degradations");
    std::optional<std::string> Error = PV.stringMember("error");
    const JsonValue *Seconds = PV.find("seconds");
    if (!Index || !Name || !Ok || !Fp || !Degr || !Error || !Seconds ||
        !Seconds->isNumber())
      return false;
    ShardProgramResult R;
    R.Name = std::move(*Name);
    R.Ok = *Ok;
    R.FingerprintHex = std::move(*Fp);
    R.Seconds = Seconds->number();
    R.Degradations = static_cast<uint64_t>(*Degr);
    R.Error = std::move(*Error);
    Out.Programs.emplace_back(static_cast<size_t>(*Index), std::move(R));
  }
  return true;
}

/// Folds one shard's outcome into the merged result.  In overlap mode
/// every shard sees the full corpus; shard 0's per-program results win
/// (all shards' fingerprints are recorded for convergence checks).
void mergeOutcome(ShardBatchResult &Merged, const ShardOutcome &Out,
                  unsigned Shard, bool Overlap) {
  Merged.CacheHits += Out.CacheHits;
  Merged.CacheMisses += Out.CacheMisses;
  Merged.DiskHits += Out.DiskHits;
  Merged.CacheEntries = std::max(Merged.CacheEntries, Out.CacheEntries);
  if (Merged.Warning.empty() && !Out.Warning.empty())
    Merged.Warning = Out.Warning;
  if (Overlap) {
    std::string Blob;
    for (const auto &[Index, R] : Out.Programs) {
      Blob += R.FingerprintHex;
      Blob += '\n';
    }
    Merged.ShardFingerprints.push_back(hex64(fnv1a64(Blob)));
    if (Shard != 0)
      return;
  }
  for (const auto &[Index, R] : Out.Programs) {
    if (Index < Merged.Programs.size())
      Merged.Programs[Index] = R;
    Merged.Latency.addNs(static_cast<uint64_t>(R.Seconds * 1e9));
  }
}

} // namespace

ShardBatchResult
granlog::runShardedBatch(const std::vector<BenchmarkDef> &Corpus,
                         const ShardConfig &Config) {
  using Clock = std::chrono::steady_clock;
  auto T0 = Clock::now();

  unsigned Shards = std::max(1u, Config.Shards);
  ShardBatchResult Merged;
  Merged.Shards = Shards;
  Merged.Programs.resize(Corpus.size());

#if GRANLOG_HAVE_FORK
  bool Fork = Shards > 1;
#else
  bool Fork = false;
#endif

  if (!Fork) {
    // In-process: run the slices sequentially (identical results, no
    // process isolation).  Shards == 1 is the common path.
    for (unsigned S = 0; S != Shards; ++S) {
      ShardOutcome Out = runShardSlice(
          Corpus, shardSlice(Corpus.size(), Shards, S, Config.Overlap),
          Config);
      mergeOutcome(Merged, Out, S, Config.Overlap);
    }
  } else {
#if GRANLOG_HAVE_FORK
    Merged.Forked = true;
    namespace fs = std::filesystem;
    std::error_code EC;
    fs::path WorkDir = Config.WorkDir.empty()
                           ? fs::temp_directory_path(EC) /
                                 ("granlog-shards-" +
                                  std::to_string(getpid()))
                           : fs::path(Config.WorkDir);
    bool OwnWorkDir = Config.WorkDir.empty();
    fs::create_directories(WorkDir, EC);

    std::vector<pid_t> Pids(Shards, -1);
    for (unsigned S = 0; S != Shards; ++S) {
      std::string ResultPath =
          (WorkDir / ("shard-" + std::to_string(S) + ".json")).string();
      pid_t Pid = fork();
      if (Pid == 0) {
        // Worker: analyze the slice, persist the result JSON, and leave
        // without running parent-process atexit handlers.  The keyed
        // crash site decides per shard index (occurrence counters are
        // inherited from the parent and would make every child agree).
        if (faultPointKeyed("shard.crash", S))
          _exit(3);
        ShardOutcome Out = runShardSlice(
            Corpus, shardSlice(Corpus.size(), Shards, S, Config.Overlap),
            Config);
        bool Written = writeFileAtomic(ResultPath, shardResultJson(Out));
        _exit(Written ? 0 : 1);
      }
      if (Pid < 0)
        Merged.ShardFailures.push_back(
            {S, std::string("fork failed: ") + std::strerror(errno),
             /*Retried=*/false});
      Pids[S] = Pid;
    }
    for (unsigned S = 0; S != Shards; ++S) {
      std::string Reason;
      if (Pids[S] > 0) {
        int Status = 0;
        waitpid(Pids[S], &Status, 0);
        if (!WIFEXITED(Status))
          Reason = "worker killed by signal " +
                   std::to_string(WIFSIGNALED(Status) ? WTERMSIG(Status)
                                                      : 0);
        else if (WEXITSTATUS(Status) != 0)
          Reason = "worker exited with status " +
                   std::to_string(WEXITSTATUS(Status));
      }
      if (Reason.empty()) {
        std::string ResultPath =
            (WorkDir / ("shard-" + std::to_string(S) + ".json")).string();
        std::ifstream In(ResultPath, std::ios::binary);
        std::string Text{std::istreambuf_iterator<char>(In),
                         std::istreambuf_iterator<char>()};
        ShardOutcome Out;
        if (In.is_open() && parseShardResult(Text, Out)) {
          mergeOutcome(Merged, Out, S, Config.Overlap);
          continue;
        }
        Reason = "produced no readable result";
      }
      // A shard that crashed, exited nonzero or lost its result file is
      // re-run in-process once: the batch result stays complete (and,
      // fingerprints being content hashes, identical), the incident is
      // recorded instead of silently healed.
      ShardOutcome Out = runShardSlice(
          Corpus, shardSlice(Corpus.size(), Shards, S, Config.Overlap),
          Config);
      mergeOutcome(Merged, Out, S, Config.Overlap);
      if (Pids[S] < 0) {
        for (ShardFailure &F : Merged.ShardFailures)
          if (F.Shard == S)
            F.Retried = true;
      } else {
        Merged.ShardFailures.push_back({S, Reason, /*Retried=*/true});
      }
    }
    if (OwnWorkDir)
      fs::remove_all(WorkDir, EC);
#endif
  }

  for (const ShardProgramResult &R : Merged.Programs)
    Merged.Failures += !R.Ok;
  Merged.WallSeconds =
      std::chrono::duration<double>(Clock::now() - T0).count();
  return Merged;
}
