//===- corpus/Harness.h - The experiment harness ---------------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one benchmark through the full pipeline of the paper's Section 7
/// experiments: analyze -> transform -> execute both the uncontrolled
/// program (T0) and the granularity-controlled one (T1) -> replay both
/// traces on the simulated machine.  Used by the bench binaries, the
/// examples and the integration tests.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_CORPUS_HARNESS_H
#define GRANLOG_CORPUS_HARNESS_H

#include "core/GranularityAnalyzer.h"
#include "core/Transform.h"
#include "corpus/Corpus.h"
#include "interp/Interpreter.h"
#include "runtime/Scheduler.h"

namespace granlog {

/// Configuration of one experiment.
struct HarnessConfig {
  MachineConfig Machine = MachineConfig::rolog();
  CostMetric Metric = CostMetric::resolutions();
  /// Analyzer overhead W; negative means "derive from the machine"
  /// (spawn + sched + join), as the paper suggests.
  double OverheadW = -1;
  /// Force this threshold on every RuntimeTest predicate (Figure 2
  /// sweeps); negative means "use the computed thresholds".
  int64_t ThresholdOverride = -1;
  /// Transformation options (e.g. sequential specialization).
  TransformOptions Transform;

  double effectiveW() const {
    return OverheadW >= 0 ? OverheadW : Machine.taskOverhead();
  }
};

/// The results of one benchmark experiment.
struct BenchmarkRun {
  bool Ok0 = false; ///< uncontrolled run succeeded
  bool Ok1 = false; ///< controlled run succeeded
  SimResult Sim0;   ///< no granularity control (T0)
  SimResult Sim1;   ///< with granularity control (T1)
  InterpCounters Counters0;
  InterpCounters Counters1;
  TransformStats Stats;
  std::string AnalysisReport;

  /// The paper's "speedup" column: (T0 - T1) / T0, in percent.
  double speedupPercent() const {
    if (Sim0.ParallelTime <= 0)
      return 0;
    return (Sim0.ParallelTime - Sim1.ParallelTime) / Sim0.ParallelTime *
           100.0;
  }
};

/// Runs benchmark \p B with input parameter \p Input under \p Config.
BenchmarkRun runBenchmark(const BenchmarkDef &B, int Input,
                          const HarnessConfig &Config);

/// Interpreter weights consistent with \p M (grain test costs etc.).
InterpOptions interpOptionsFor(const MachineConfig &M);

/// Configuration of a batch analysis over the whole corpus.
struct BatchConfig {
  CostMetric Metric = CostMetric::resolutions();
  double OverheadW = 48.0;
  /// Worker threads: benchmarks are analyzed concurrently on a
  /// work-stealing pool (1 = sequential, in corpus order).
  unsigned Jobs = 1;
  /// Share one recurrence memo table across all benchmarks, so an
  /// equation solved for one program is replayed for every other.
  bool ShareCache = true;
  /// Collect a per-benchmark StatsRegistry and stats-JSON document.
  bool CollectStats = true;
  /// Resource limits applied to every benchmark (each gets its own fresh
  /// Budget, so one pathological file cannot eat another's budget).  The
  /// default (all zero) runs unbudgeted.
  BudgetLimits Budget{};
  /// The benchmark set to analyze; null means the built-in Table 1 corpus.
  const std::vector<BenchmarkDef> *Corpus = nullptr;
  /// Persist the shared solver cache to <CacheDir>/solver-cache.json:
  /// loaded before the batch, saved after, so a second batch run skips
  /// every already-solved recurrence (warm-cache CI path).  Requires
  /// ShareCache; "" (the default) keeps the cache in-memory only.
  std::string CacheDir;
  /// Analyzer span tracing (support/Tracer); null (the default) keeps the
  /// batch untraced and byte-identical to pre-tracing behavior.  When
  /// set, each benchmark gets a Program span (tagged with its registered
  /// program id) and a per-benchmark profile in BatchAnalysis.
  class Tracer *Trace = nullptr;
  /// Which resource bounds every benchmark's analysis computes (see
  /// AnalyzerOptions::Bounds).  Upper (the default) keeps batch output
  /// byte-identical to pre-interval builds.
  BoundsMode Bounds = BoundsMode::Upper;
};

/// Analysis-only results of one corpus benchmark in a batch.
struct BatchAnalysis {
  std::string Name;
  bool Ok = false;         ///< program loaded and analysis ran
  std::string Report;      ///< GranularityAnalyzer::report()
  std::string ExplainAll;  ///< full provenance text
  std::string StatsJson;   ///< writeJson document ("" when stats off)
  /// Why Ok is false ("" otherwise): load diagnostics, or the message of
  /// an exception that escaped this benchmark's analysis.  Faults are
  /// isolated per benchmark — the rest of the batch still completes.
  std::string Error;
  /// Number of budget degradations recorded while analyzing this
  /// benchmark (0 for unbudgeted or within-budget runs).
  size_t Degradations = 0;
  double Seconds = 0;      ///< wall-clock time of this benchmark's analysis

  // Tracing-only fields, filled (after the pool joins) when
  // BatchConfig::Trace was set; empty/zero otherwise.  Kept out of
  // StatsJson so traced and untraced batches emit identical reports.
  std::string Profile;     ///< support/Profile::profileReport text
  uint64_t SccSpans = 0;   ///< SCCs with measured size+cost spans
  uint64_t SccP50Ns = 0;   ///< per-SCC latency percentiles (upper bounds)
  uint64_t SccP90Ns = 0;
  uint64_t SccP99Ns = 0;
  /// SCC condensation DAG + labels (GranularityAnalyzer::
  /// sccDependencies/sccLabels), captured for critical-path reporting.
  std::vector<std::vector<unsigned>> SccDeps;
  std::vector<std::string> SccNames;
};

/// Results of a whole-corpus batch analysis.
struct BatchResult {
  std::vector<BatchAnalysis> Results; ///< in corpus (Table 1) order
  /// Shared-cache traffic over the whole batch (zero when the cache is
  /// per-benchmark); reported here rather than in per-benchmark stats so
  /// each benchmark's stats-JSON is independent of batch scheduling.
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  size_t CacheEntries = 0;
  /// Hits served by entries loaded from BatchConfig::CacheDir (0 for
  /// in-memory batches or a cold cache file).
  uint64_t DiskHits = 0;
  /// Diagnostic from loading/saving a corrupt or unwritable persistent
  /// cache ("" when clean).  A corrupt file degrades to a cold cache.
  std::string CacheWarning;
  double WallSeconds = 0;
};

/// Analyzes every corpus benchmark (each with its own arena, diagnostics
/// and stats registry) on \p Config.Jobs worker threads.  Per-benchmark
/// outputs are byte-identical for any job count.
BatchResult analyzeCorpusBatch(const BatchConfig &Config);

} // namespace granlog

#endif // GRANLOG_CORPUS_HARNESS_H
