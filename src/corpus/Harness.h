//===- corpus/Harness.h - The experiment harness ---------------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one benchmark through the full pipeline of the paper's Section 7
/// experiments: analyze -> transform -> execute both the uncontrolled
/// program (T0) and the granularity-controlled one (T1) -> replay both
/// traces on the simulated machine.  Used by the bench binaries, the
/// examples and the integration tests.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_CORPUS_HARNESS_H
#define GRANLOG_CORPUS_HARNESS_H

#include "core/GranularityAnalyzer.h"
#include "core/Transform.h"
#include "corpus/Corpus.h"
#include "interp/Interpreter.h"
#include "runtime/Scheduler.h"

namespace granlog {

/// Configuration of one experiment.
struct HarnessConfig {
  MachineConfig Machine = MachineConfig::rolog();
  CostMetric Metric = CostMetric::resolutions();
  /// Analyzer overhead W; negative means "derive from the machine"
  /// (spawn + sched + join), as the paper suggests.
  double OverheadW = -1;
  /// Force this threshold on every RuntimeTest predicate (Figure 2
  /// sweeps); negative means "use the computed thresholds".
  int64_t ThresholdOverride = -1;
  /// Transformation options (e.g. sequential specialization).
  TransformOptions Transform;

  double effectiveW() const {
    return OverheadW >= 0 ? OverheadW : Machine.taskOverhead();
  }
};

/// The results of one benchmark experiment.
struct BenchmarkRun {
  bool Ok0 = false; ///< uncontrolled run succeeded
  bool Ok1 = false; ///< controlled run succeeded
  SimResult Sim0;   ///< no granularity control (T0)
  SimResult Sim1;   ///< with granularity control (T1)
  InterpCounters Counters0;
  InterpCounters Counters1;
  TransformStats Stats;
  std::string AnalysisReport;

  /// The paper's "speedup" column: (T0 - T1) / T0, in percent.
  double speedupPercent() const {
    if (Sim0.ParallelTime <= 0)
      return 0;
    return (Sim0.ParallelTime - Sim1.ParallelTime) / Sim0.ParallelTime *
           100.0;
  }
};

/// Runs benchmark \p B with input parameter \p Input under \p Config.
BenchmarkRun runBenchmark(const BenchmarkDef &B, int Input,
                          const HarnessConfig &Config);

/// Interpreter weights consistent with \p M (grain test costs etc.).
InterpOptions interpOptionsFor(const MachineConfig &M);

} // namespace granlog

#endif // GRANLOG_CORPUS_HARNESS_H
