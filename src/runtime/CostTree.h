//===- runtime/CostTree.h - Series-parallel execution traces --------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A series-parallel trace of one program execution: Work leaves hold
/// abstract cost units, Seq nodes sequence children, Par nodes represent
/// '&' conjunctions whose branches may run as separate tasks.  The
/// interpreter builds the tree; the scheduler (Scheduler.h) replays it on
/// a simulated multiprocessor.
///
/// This is the substitution for the paper's physical Sequent Symmetry: the
/// trace captures exactly the quantities the paper's comparison depends on
/// (work per task and the fork/join structure), while the machine config
/// supplies the overhead constants that differ between ROLOG and &-Prolog.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_RUNTIME_COSTTREE_H
#define GRANLOG_RUNTIME_COSTTREE_H

#include <cassert>
#include <memory>
#include <vector>

namespace granlog {

/// One node of the trace.
struct CostNode {
  enum class Kind { Work, Seq, Par };

  explicit CostNode(Kind K) : NodeKind(K) {}

  Kind NodeKind;
  double Units = 0; ///< Work only
  std::vector<std::unique_ptr<CostNode>> Children; ///< Seq/Par only

  /// Total work in the subtree (ignoring all scheduling).
  double totalWork() const;
  /// Critical path: the minimum completion time with unbounded processors
  /// and zero overheads.
  double criticalPath() const;
  /// Number of Par nodes in the subtree.
  unsigned parCount() const;
};

/// Incremental builder used by the interpreter.  The tree under
/// construction is a stack of open Seq/Par nodes; addWork accumulates into
/// the innermost open Seq.
class CostTreeBuilder {
public:
  CostTreeBuilder();

  /// Adds \p Units of sequential work at the current position.
  void addWork(double Units);

  /// Opens a Par node (a '&' conjunction).
  void beginPar();
  /// Opens the next branch of the innermost Par.
  void beginBranch();
  /// Closes the current branch.
  void endBranch();
  /// Closes the innermost Par.
  void endPar();

  /// Opaque checkpoint: the current open-node stack depth.
  size_t mark() const { return Stack.size(); }
  /// Closes any nodes opened since \p M (used when execution backtracks
  /// out of a partially built parallel region; the recorded work is kept —
  /// it was really performed).
  void unwindTo(size_t M);

  /// Finishes construction and returns the root (a Seq node).
  std::unique_ptr<CostNode> finish();

private:
  CostNode *current() { return Stack.back(); }

  std::unique_ptr<CostNode> Root;
  std::vector<CostNode *> Stack;
};

} // namespace granlog

#endif // GRANLOG_RUNTIME_COSTTREE_H
