//===- runtime/Scheduler.h - Simulated multiprocessor ---------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic discrete-event simulation of AND-parallel execution on
/// P workers.  A Par node forks its branches: the parent pays a spawn
/// overhead per extra branch, pushes branches 2..k to a global FIFO goal
/// queue (each pays a scheduling overhead when a worker picks it up),
/// executes branch 1 itself, then blocks at the join until all branches
/// finish (paying a join overhead) — the RAP-WAM goal-stack discipline of
/// &-Prolog [6, 7], which ROLOG's reduce-or model approximates with larger
/// constants.
///
/// The two named configurations model the paper's two systems: ROLOG
/// (high task-management overhead: remote process creation, message-based
/// scheduling) and &-Prolog (low overhead: shared-memory goal stacks).
/// Absolute constants are in abstract work units (one unit = one
/// resolution's worth of work); only their ratio to grain sizes matters
/// for the shapes the paper reports.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_RUNTIME_SCHEDULER_H
#define GRANLOG_RUNTIME_SCHEDULER_H

#include "runtime/CostTree.h"

#include <string>

namespace granlog {

class TraceWriter;

/// The simulated machine.
struct MachineConfig {
  unsigned Processors = 4;
  double SpawnOverhead = 10;  ///< parent cost per extra branch forked
  double SchedOverhead = 10;  ///< startup cost when a worker picks a task
  double JoinOverhead = 5;    ///< parent cost at the join point
  std::string Name = "generic";
  double GrainTestCost = 1;      ///< '$grain_leq' evaluation cost
  double SizeCostPerElement = 0.25; ///< per-element size traversal cost
  /// Whether the system maintains list-length/integer size information so
  /// grain tests on those measures are O(1) (paper footnote 1).  Term-size
  /// measures always traverse.
  bool MaintainedSizes = true;

  /// The task-management overhead W a spawned goal must amortize — the
  /// paper determines the threshold input size from exactly this quantity.
  double taskOverhead() const {
    return SpawnOverhead + SchedOverhead + JoinOverhead;
  }

  /// ROLOG-like: a reduce-or system with heavyweight task management.
  static MachineConfig rolog(unsigned Processors = 4) {
    MachineConfig M;
    M.Processors = Processors;
    M.SpawnOverhead = 30;
    M.SchedOverhead = 25;
    M.JoinOverhead = 10;
    M.Name = "ROLOG";
    M.GrainTestCost = 2;
    // Term-size grain tests traverse the term; with maintenance-free
    // deep measures this is the dominant overhead for flatten-style
    // workloads (the paper's negative result).
    M.SizeCostPerElement = 3.0;
    return M;
  }
  /// &-Prolog-like: RAP-WAM goal stacks on shared memory.
  static MachineConfig andProlog(unsigned Processors = 4) {
    MachineConfig M;
    M.Processors = Processors;
    M.SpawnOverhead = 3;
    M.SchedOverhead = 3;
    M.JoinOverhead = 2;
    M.Name = "&-Prolog";
    M.GrainTestCost = 2;
    M.SizeCostPerElement = 0.5;

    return M;
  }
};

/// Result of one simulation.
struct SimResult {
  double ParallelTime = 0;   ///< makespan on P workers with overheads
  double SequentialTime = 0; ///< total work, no tasking, one worker
  double CriticalPath = 0;   ///< bound with infinite workers, no overheads
  unsigned TasksSpawned = 0; ///< branches that became separate tasks
  double OverheadUnits = 0;  ///< total spawn+sched+join cost paid
  /// Per simulated worker: time spent executing segments (work or
  /// overhead); idle time is ParallelTime - WorkerBusy[w].
  std::vector<double> WorkerBusy;

  /// An empty trace took no time on either machine: speedup 1, not 0.
  double speedup() const {
    return ParallelTime > 0 ? SequentialTime / ParallelTime : 1.0;
  }

  /// Busy fraction of worker \p W over the makespan, in [0, 1].
  double utilization(unsigned W) const {
    if (ParallelTime <= 0 || W >= WorkerBusy.size())
      return 0;
    return WorkerBusy[W] / ParallelTime;
  }
  /// Mean busy fraction across all workers.
  double utilization() const {
    if (ParallelTime <= 0 || WorkerBusy.empty())
      return 0;
    double Busy = 0;
    for (double B : WorkerBusy)
      Busy += B;
    return Busy / (ParallelTime * static_cast<double>(WorkerBusy.size()));
  }
};

/// Simulates the execution trace \p Root on \p Config.  When \p Trace is
/// non-null, emits a Chrome trace: one track per worker, complete spans
/// for executed task segments ("task<id>", category "task"; overhead
/// segments under category "overhead") and instant events at each
/// spawn/sched/join overhead payment.
SimResult simulate(const CostNode &Root, const MachineConfig &Config,
                   TraceWriter *Trace = nullptr);

} // namespace granlog

#endif // GRANLOG_RUNTIME_SCHEDULER_H
