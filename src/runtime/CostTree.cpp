//===- runtime/CostTree.cpp -----------------------------------------------===//

#include "runtime/CostTree.h"

#include <algorithm>

using namespace granlog;

double CostNode::totalWork() const {
  if (NodeKind == Kind::Work)
    return Units;
  double Sum = 0;
  for (const auto &C : Children)
    Sum += C->totalWork();
  return Sum;
}

double CostNode::criticalPath() const {
  switch (NodeKind) {
  case Kind::Work:
    return Units;
  case Kind::Seq: {
    double Sum = 0;
    for (const auto &C : Children)
      Sum += C->criticalPath();
    return Sum;
  }
  case Kind::Par: {
    double Max = 0;
    for (const auto &C : Children)
      Max = std::max(Max, C->criticalPath());
    return Max;
  }
  }
  return 0;
}

unsigned CostNode::parCount() const {
  unsigned N = NodeKind == Kind::Par ? 1 : 0;
  for (const auto &C : Children)
    N += C->parCount();
  return N;
}

CostTreeBuilder::CostTreeBuilder() {
  Root = std::make_unique<CostNode>(CostNode::Kind::Seq);
  Stack.push_back(Root.get());
}

void CostTreeBuilder::addWork(double Units) {
  if (Units <= 0)
    return;
  CostNode *Cur = current();
  assert(Cur->NodeKind != CostNode::Kind::Work);
  // Accumulate into a trailing Work leaf when the current node is a Seq;
  // a Par node's "work" belongs to branches, so open an implicit one...
  // (the interpreter always adds work inside branches, so Cur is a Seq).
  if (!Cur->Children.empty() &&
      Cur->Children.back()->NodeKind == CostNode::Kind::Work) {
    Cur->Children.back()->Units += Units;
    return;
  }
  auto Leaf = std::make_unique<CostNode>(CostNode::Kind::Work);
  Leaf->Units = Units;
  Cur->Children.push_back(std::move(Leaf));
}

void CostTreeBuilder::beginPar() {
  auto Par = std::make_unique<CostNode>(CostNode::Kind::Par);
  CostNode *P = Par.get();
  current()->Children.push_back(std::move(Par));
  Stack.push_back(P);
}

void CostTreeBuilder::beginBranch() {
  assert(current()->NodeKind == CostNode::Kind::Par &&
         "branch outside a Par node");
  auto Branch = std::make_unique<CostNode>(CostNode::Kind::Seq);
  CostNode *B = Branch.get();
  current()->Children.push_back(std::move(Branch));
  Stack.push_back(B);
}

void CostTreeBuilder::endBranch() {
  assert(Stack.size() > 1 && current()->NodeKind == CostNode::Kind::Seq);
  Stack.pop_back();
}

void CostTreeBuilder::endPar() {
  assert(Stack.size() > 1 && current()->NodeKind == CostNode::Kind::Par);
  Stack.pop_back();
}

void CostTreeBuilder::unwindTo(size_t M) {
  assert(M >= 1 && "cannot unwind past the root");
  // A mark deeper than the current stack can occur when execution
  // backtracks into an already-closed parallel region; unwinding is then a
  // no-op (the recorded structure is kept as-is).
  while (Stack.size() > M)
    Stack.pop_back();
}

std::unique_ptr<CostNode> CostTreeBuilder::finish() {
  unwindTo(1);
  Stack.clear();
  return std::move(Root);
}
