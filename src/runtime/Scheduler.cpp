//===- runtime/Scheduler.cpp ----------------------------------------------===//

#include "runtime/Scheduler.h"

#include "support/TraceEvent.h"

#include <deque>
#include <queue>

using namespace granlog;

namespace {

/// What a Work segment's time is spent on; only distinguished for trace
/// emission (spans and overhead markers), never for timing.
enum class WorkTag { Compute, Spawn, Sched, Join };

const char *tagName(WorkTag Tag) {
  switch (Tag) {
  case WorkTag::Compute:
    return "compute";
  case WorkTag::Spawn:
    return "spawn";
  case WorkTag::Sched:
    return "sched";
  case WorkTag::Join:
    return "join";
  }
  return "?";
}

/// One step of a task's execution.
struct Segment {
  enum class Kind { Work, Fork, Join };
  Kind SegKind = Kind::Work;
  double Units = 0;               ///< Work: duration
  std::vector<unsigned> Children; ///< Fork: tasks to enqueue
  unsigned Group = 0;             ///< Fork/Join: join group id
  WorkTag Tag = WorkTag::Compute; ///< Work: what the time pays for
};

/// A schedulable task: a flattened branch of the cost tree.
struct SimTask {
  std::vector<Segment> Segments;
  size_t NextSeg = 0;
  int Parent = -1;
  unsigned ParentGroup = 0;
  std::vector<unsigned> GroupRemaining; ///< outstanding children per group
  bool BlockedAtJoin = false;
};

/// Flattens a CostNode tree into SimTasks.
class TaskBuilder {
public:
  /// With \p SplitTags, overhead work is kept in separate segments so the
  /// trace can attribute it; merged otherwise (identical timing, fewer
  /// events).
  TaskBuilder(const MachineConfig &Config, bool SplitTags = false)
      : Config(Config), SplitTags(SplitTags) {}

  unsigned build(const CostNode &Branch) {
    unsigned Id = static_cast<unsigned>(Tasks.size());
    Tasks.emplace_back();
    append(Id, Branch);
    return Id;
  }

  std::vector<SimTask> take() { return std::move(Tasks); }
  unsigned tasksSpawned() const { return Spawned; }
  double overheadUnits() const { return Overhead; }

private:
  void addWork(unsigned Task, double Units,
               WorkTag Tag = WorkTag::Compute) {
    if (Units <= 0)
      return;
    std::vector<Segment> &Segs = Tasks[Task].Segments;
    if (!Segs.empty() && Segs.back().SegKind == Segment::Kind::Work &&
        (!SplitTags || Segs.back().Tag == Tag)) {
      Segs.back().Units += Units;
      return;
    }
    Segment S;
    S.SegKind = Segment::Kind::Work;
    S.Units = Units;
    S.Tag = SplitTags ? Tag : WorkTag::Compute;
    Segs.push_back(std::move(S));
  }

  void append(unsigned Task, const CostNode &Node) {
    switch (Node.NodeKind) {
    case CostNode::Kind::Work:
      addWork(Task, Node.Units);
      return;
    case CostNode::Kind::Seq:
      for (const auto &C : Node.Children)
        append(Task, *C);
      return;
    case CostNode::Kind::Par:
      break;
    }
    const std::vector<std::unique_ptr<CostNode>> &Branches = Node.Children;
    if (Branches.empty())
      return;
    if (Branches.size() == 1) {
      append(Task, *Branches[0]);
      return;
    }
    // Parent forks branches 2..k, runs branch 1 inline, then joins.
    unsigned Extra = static_cast<unsigned>(Branches.size()) - 1;
    double SpawnCost = Config.SpawnOverhead * Extra;
    Overhead += SpawnCost + Config.JoinOverhead +
                Config.SchedOverhead * Extra;
    addWork(Task, SpawnCost, WorkTag::Spawn);

    unsigned Group = static_cast<unsigned>(Tasks[Task].GroupRemaining.size());
    Tasks[Task].GroupRemaining.push_back(Extra);

    Segment Fork;
    Fork.SegKind = Segment::Kind::Fork;
    Fork.Group = Group;
    for (size_t I = 1; I != Branches.size(); ++I) {
      unsigned Child = static_cast<unsigned>(Tasks.size());
      Tasks.emplace_back();
      Tasks[Child].Parent = static_cast<int>(Task);
      Tasks[Child].ParentGroup = Group;
      ++Spawned;
      addWork(Child, Config.SchedOverhead, WorkTag::Sched);
      append(Child, *Branches[I]);
      Fork.Children.push_back(Child);
    }
    Tasks[Task].Segments.push_back(std::move(Fork));
    append(Task, *Branches[0]);
    Segment Join;
    Join.SegKind = Segment::Kind::Join;
    Join.Group = Group;
    Tasks[Task].Segments.push_back(std::move(Join));
    addWork(Task, Config.JoinOverhead, WorkTag::Join);
  }

  const MachineConfig &Config;
  std::vector<SimTask> Tasks;
  bool SplitTags;
  unsigned Spawned = 0;
  double Overhead = 0;
};

/// The event-driven simulation.
class Simulation {
public:
  Simulation(std::vector<SimTask> Tasks, unsigned Workers,
             TraceWriter *Trace = nullptr)
      : Tasks(std::move(Tasks)), Busy(Workers, 0.0), Trace(Trace) {
    for (unsigned W = 0; W != Workers; ++W)
      IdleWorkers.push_back(Workers - 1 - W); // pop lowest id first
    if (Trace) {
      // Claim pid 0 and label its clock domain: these timestamps are
      // abstract work units, not wall time (see support/TraceEvent.h).
      Trace->processName(0, "simulated multiprocessor (abstract units)");
      for (unsigned W = 0; W != Workers; ++W)
        Trace->threadName(W, "worker " + std::to_string(W));
    }
  }

  double run() {
    Ready.push_back(0);
    dispatch(0.0);
    while (!Events.empty()) {
      Event E = Events.top();
      Events.pop();
      Makespan = std::max(Makespan, E.Time);
      // The worker completed a Work segment of its task.
      SimTask &T = Tasks[E.Task];
      ++T.NextSeg;
      advance(E.Task, E.Worker, E.Time);
      dispatch(E.Time);
    }
    return Makespan;
  }

  /// Per-worker busy time; valid after run().
  std::vector<double> takeBusy() { return std::move(Busy); }

private:
  struct Event {
    double Time;
    uint64_t Seq;
    unsigned Worker;
    unsigned Task;
    bool operator>(const Event &O) const {
      if (Time != O.Time)
        return Time > O.Time;
      return Seq > O.Seq;
    }
  };

  /// Runs \p Task on \p Worker from segment NextSeg at time \p T until it
  /// starts a Work segment (event queued), blocks, or finishes.
  void advance(unsigned TaskId, unsigned Worker, double T) {
    SimTask &Task = Tasks[TaskId];
    for (;;) {
      if (Task.NextSeg >= Task.Segments.size()) {
        finish(TaskId, T);
        releaseWorker(Worker);
        return;
      }
      Segment &S = Task.Segments[Task.NextSeg];
      switch (S.SegKind) {
      case Segment::Kind::Work:
        Busy[Worker] += S.Units;
        if (Trace) {
          if (S.Tag == WorkTag::Compute) {
            Trace->complete("task" + std::to_string(TaskId), "task", Worker,
                            T, S.Units);
          } else {
            // Overhead payment: a span attributing the time plus an
            // instant marker at the payment moment.
            Trace->complete(tagName(S.Tag), "overhead", Worker, T, S.Units);
            Trace->instant(tagName(S.Tag), "overhead", Worker, T);
          }
        }
        Events.push({T + S.Units, NextSeq++, Worker, TaskId});
        return;
      case Segment::Kind::Fork:
        for (unsigned C : S.Children)
          Ready.push_back(C);
        ++Task.NextSeg;
        continue;
      case Segment::Kind::Join:
        if (Task.GroupRemaining[S.Group] > 0) {
          Task.BlockedAtJoin = true;
          releaseWorker(Worker);
          return;
        }
        ++Task.NextSeg;
        continue;
      }
    }
  }

  void finish(unsigned TaskId, double T) {
    Makespan = std::max(Makespan, T);
    SimTask &Task = Tasks[TaskId];
    if (Task.Parent < 0)
      return;
    SimTask &Parent = Tasks[Task.Parent];
    assert(Parent.GroupRemaining[Task.ParentGroup] > 0);
    if (--Parent.GroupRemaining[Task.ParentGroup] == 0 &&
        Parent.BlockedAtJoin) {
      // Check the parent is blocked on *this* group's join.
      const Segment &S = Parent.Segments[Parent.NextSeg];
      if (S.SegKind == Segment::Kind::Join && S.Group == Task.ParentGroup) {
        Parent.BlockedAtJoin = false;
        ++Parent.NextSeg;
        Ready.push_back(static_cast<unsigned>(Task.Parent));
      }
    }
  }

  void releaseWorker(unsigned Worker) { IdleWorkers.push_back(Worker); }

  void dispatch(double T) {
    while (!IdleWorkers.empty() && !Ready.empty()) {
      unsigned Worker = IdleWorkers.back();
      IdleWorkers.pop_back();
      unsigned TaskId = Ready.front();
      Ready.pop_front();
      advance(TaskId, Worker, T);
    }
  }

  std::vector<SimTask> Tasks;
  std::vector<unsigned> IdleWorkers;
  std::deque<unsigned> Ready;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> Events;
  uint64_t NextSeq = 0;
  double Makespan = 0;
  std::vector<double> Busy;
  TraceWriter *Trace;
};

} // namespace

SimResult granlog::simulate(const CostNode &Root, const MachineConfig &Config,
                            TraceWriter *Trace) {
  SimResult Result;
  Result.SequentialTime = Root.totalWork();
  Result.CriticalPath = Root.criticalPath();

  TaskBuilder Builder(Config, /*SplitTags=*/Trace != nullptr);
  Builder.build(Root);
  Result.TasksSpawned = Builder.tasksSpawned();
  Result.OverheadUnits = Builder.overheadUnits();

  Simulation Sim(Builder.take(), std::max(1u, Config.Processors), Trace);
  Result.ParallelTime = Sim.run();
  Result.WorkerBusy = Sim.takeBusy();
  return Result;
}
