//===- term/TermWriter.h - Printing terms ---------------------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders terms back to (approximately) the surface syntax: list sugar,
/// infix rendering for the standard operators, canonical f(...) form for
/// everything else.  Used by diagnostics, tests and the examples.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_TERM_TERMWRITER_H
#define GRANLOG_TERM_TERMWRITER_H

#include "term/Term.h"

#include <string>

namespace granlog {

/// Pretty-prints terms created against \p Symbols.
class TermWriter {
public:
  explicit TermWriter(const SymbolTable &Symbols) : Symbols(Symbols) {}

  std::string str(const Term *T) const;

private:
  void write(const Term *T, std::string &Out, int ParentPrec) const;
  void writeList(const Term *T, std::string &Out) const;

  const SymbolTable &Symbols;
};

/// Convenience wrapper: one-shot printing.
inline std::string termText(const Term *T, const SymbolTable &Symbols) {
  return TermWriter(Symbols).str(T);
}

} // namespace granlog

#endif // GRANLOG_TERM_TERMWRITER_H
