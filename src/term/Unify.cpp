//===- term/Unify.cpp -----------------------------------------------------===//

#include "term/Unify.h"

using namespace granlog;

bool granlog::unify(const Term *A, const Term *B, BindingEnv &Env,
                    UnifyStats *Stats) {
  A = deref(A);
  B = deref(B);
  if (Stats)
    ++Stats->Unifications;
  if (A == B)
    return true;

  if (const VarTerm *VA = dynCast<VarTerm>(A)) {
    Env.bind(VA, B);
    if (Stats)
      ++Stats->Bindings;
    return true;
  }
  if (const VarTerm *VB = dynCast<VarTerm>(B)) {
    Env.bind(VB, A);
    if (Stats)
      ++Stats->Bindings;
    return true;
  }

  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case TermKind::Atom:
    return cast<AtomTerm>(A)->name() == cast<AtomTerm>(B)->name();
  case TermKind::Int:
    return cast<IntTerm>(A)->value() == cast<IntTerm>(B)->value();
  case TermKind::Float:
    return cast<FloatTerm>(A)->value() == cast<FloatTerm>(B)->value();
  case TermKind::Struct: {
    const StructTerm *SA = cast<StructTerm>(A);
    const StructTerm *SB = cast<StructTerm>(B);
    if (SA->name() != SB->name() || SA->arity() != SB->arity())
      return false;
    for (unsigned I = 0, E = SA->arity(); I != E; ++I)
      if (!unify(SA->arg(I), SB->arg(I), Env, Stats))
        return false;
    return true;
  }
  case TermKind::Variable:
    break;
  }
  assert(false && "unreachable: variables handled above");
  return false;
}

const Term *TermRenamer::rename(const Term *T) {
  T = deref(T);
  switch (T->kind()) {
  case TermKind::Variable: {
    const VarTerm *V = cast<VarTerm>(T);
    auto It = Map.find(V);
    if (It != Map.end())
      return It->second;
    const VarTerm *Fresh = Arena.makeVariable(V->name());
    Map.emplace(V, Fresh);
    return Fresh;
  }
  case TermKind::Atom:
  case TermKind::Int:
  case TermKind::Float:
    return T;
  case TermKind::Struct: {
    const StructTerm *S = cast<StructTerm>(T);
    std::vector<const Term *> Args;
    Args.reserve(S->arity());
    bool Changed = false;
    for (const Term *Arg : S->args()) {
      const Term *R = rename(Arg);
      Changed |= (R != Arg);
      Args.push_back(R);
    }
    if (!Changed)
      return S;
    return Arena.makeStruct(S->name(), std::move(Args));
  }
  }
  assert(false && "unknown term kind");
  return T;
}

const Term *granlog::resolve(const Term *T, TermArena &Arena) {
  T = deref(T);
  const StructTerm *S = dynCast<StructTerm>(T);
  if (!S)
    return T;
  std::vector<const Term *> Args;
  Args.reserve(S->arity());
  bool Changed = false;
  for (const Term *Arg : S->args()) {
    const Term *R = resolve(Arg, Arena);
    Changed |= (R != Arg);
    Args.push_back(R);
  }
  if (!Changed)
    return S;
  return Arena.makeStruct(S->name(), std::move(Args));
}
