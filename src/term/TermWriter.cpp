//===- term/TermWriter.cpp ------------------------------------------------===//

#include "term/TermWriter.h"

#include <cstdio>

using namespace granlog;

namespace {

/// Infix operators the writer knows about, with their parser priorities.
/// Lower priority binds tighter.  This mirrors reader/OpTable.cpp; the
/// writer keeps its own copy to preserve library layering (term must not
/// depend on reader).
struct InfixOp {
  const char *Name;
  int Prec;
};

const InfixOp InfixOps[] = {
    {":-", 1200}, {"-->", 1200}, {";", 1100},  {"->", 1050}, {"&", 1025},
    {",", 1000},  {"=", 700},    {"\\=", 700}, {"==", 700},  {"\\==", 700},
    {"is", 700},  {"<", 700},    {">", 700},   {"=<", 700},  {">=", 700},
    {"=:=", 700}, {"=\\=", 700}, {"+", 500},   {"-", 500},   {"*", 400},
    {"/", 400},   {"//", 400},   {"mod", 400}, {"**", 200},  {"^", 200},
};

int infixPrec(const std::string &Name) {
  for (const InfixOp &Op : InfixOps)
    if (Name == Op.Name)
      return Op.Prec;
  return -1;
}

} // namespace

std::string TermWriter::str(const Term *T) const {
  std::string Out;
  write(T, Out, 1200);
  return Out;
}

void TermWriter::writeList(const Term *T, std::string &Out) const {
  Out += '[';
  bool First = true;
  T = deref(T);
  while (isCons(T, Symbols)) {
    const StructTerm *Cell = cast<StructTerm>(deref(T));
    if (!First)
      Out += ',';
    First = false;
    write(Cell->arg(0), Out, 999);
    T = deref(Cell->arg(1));
  }
  if (!isNil(T, Symbols)) {
    Out += '|';
    write(T, Out, 999);
  }
  Out += ']';
}

void TermWriter::write(const Term *T, std::string &Out, int ParentPrec) const {
  T = deref(T);
  switch (T->kind()) {
  case TermKind::Variable: {
    const VarTerm *V = cast<VarTerm>(T);
    if (V->name().isValid())
      Out += Symbols.text(V->name());
    else
      Out += "_G" + std::to_string(V->id());
    return;
  }
  case TermKind::Atom:
    Out += Symbols.text(cast<AtomTerm>(T)->name());
    return;
  case TermKind::Int:
    Out += std::to_string(cast<IntTerm>(T)->value());
    return;
  case TermKind::Float: {
    char Buffer[32];
    std::snprintf(Buffer, sizeof(Buffer), "%g", cast<FloatTerm>(T)->value());
    Out += Buffer;
    return;
  }
  case TermKind::Struct:
    break;
  }

  const StructTerm *S = cast<StructTerm>(T);
  const std::string &Name = Symbols.text(S->name());
  if (Name == "." && S->arity() == 2) {
    writeList(S, Out);
    return;
  }
  if (S->arity() == 2) {
    int Prec = infixPrec(Name);
    if (Prec >= 0) {
      bool NeedParens = Prec > ParentPrec;
      if (NeedParens)
        Out += '(';
      write(S->arg(0), Out, Prec - 1);
      if (Name == ",") {
        Out += ",";
      } else {
        Out += ' ';
        Out += Name;
        Out += ' ';
      }
      write(S->arg(1), Out, Prec);
      if (NeedParens)
        Out += ')';
      return;
    }
  }
  if (S->arity() == 1 && Name == "-") {
    Out += '-';
    write(S->arg(0), Out, 200);
    return;
  }

  Out += Name;
  Out += '(';
  for (unsigned I = 0, E = S->arity(); I != E; ++I) {
    if (I != 0)
      Out += ',';
    write(S->arg(I), Out, 999);
  }
  Out += ')';
}
