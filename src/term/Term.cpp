//===- term/Term.cpp ------------------------------------------------------===//

#include "term/Term.h"

#include <unordered_set>

using namespace granlog;

bool Term::isGround() const {
  switch (Kind) {
  case TermKind::Variable:
    return false;
  case TermKind::Atom:
  case TermKind::Int:
  case TermKind::Float:
    return true;
  case TermKind::Struct: {
    const auto *S = static_cast<const StructTerm *>(this);
    for (const Term *Arg : S->args())
      if (!Arg->isGround())
        return false;
    return true;
  }
  }
  assert(false && "unknown term kind");
  return false;
}

const Term *granlog::deref(const Term *T) {
  while (const VarTerm *V = dynCast<VarTerm>(T)) {
    if (!V->isBound())
      return T;
    T = V->binding();
  }
  return T;
}

const Term *TermArena::makeList(const std::vector<const Term *> &Elements) {
  const Term *List = makeNil();
  for (auto It = Elements.rbegin(); It != Elements.rend(); ++It)
    List = makeCons(*It, List);
  return List;
}

const Term *TermArena::makeIntList(const std::vector<int64_t> &Values) {
  std::vector<const Term *> Elements;
  Elements.reserve(Values.size());
  for (int64_t V : Values)
    Elements.push_back(makeInt(V));
  return makeList(Elements);
}

bool granlog::isNil(const Term *T, const SymbolTable &Symbols) {
  const AtomTerm *A = dynCast<AtomTerm>(deref(T));
  return A && Symbols.text(A->name()) == "[]";
}

bool granlog::isCons(const Term *T, const SymbolTable &Symbols) {
  const StructTerm *S = dynCast<StructTerm>(deref(T));
  return S && S->arity() == 2 && Symbols.text(S->name()) == ".";
}

bool granlog::collectListElements(const Term *T, const SymbolTable &Symbols,
                                  std::vector<const Term *> &Elements) {
  T = deref(T);
  while (isCons(T, Symbols)) {
    const StructTerm *Cell = cast<StructTerm>(deref(T));
    Elements.push_back(deref(Cell->arg(0)));
    T = deref(Cell->arg(1));
  }
  return isNil(T, Symbols);
}

void granlog::collectVariables(const Term *T,
                               std::vector<const VarTerm *> &Vars) {
  T = deref(T);
  if (const VarTerm *V = dynCast<VarTerm>(T)) {
    for (const VarTerm *Seen : Vars)
      if (Seen == V)
        return;
    Vars.push_back(V);
    return;
  }
  if (const StructTerm *S = dynCast<StructTerm>(T))
    for (const Term *Arg : S->args())
      collectVariables(Arg, Vars);
}

bool granlog::termsEqual(const Term *A, const Term *B) {
  A = deref(A);
  B = deref(B);
  if (A == B)
    return true;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case TermKind::Variable:
    return false; // distinct unbound variables
  case TermKind::Atom:
    return cast<AtomTerm>(A)->name() == cast<AtomTerm>(B)->name();
  case TermKind::Int:
    return cast<IntTerm>(A)->value() == cast<IntTerm>(B)->value();
  case TermKind::Float:
    return cast<FloatTerm>(A)->value() == cast<FloatTerm>(B)->value();
  case TermKind::Struct: {
    const StructTerm *SA = cast<StructTerm>(A);
    const StructTerm *SB = cast<StructTerm>(B);
    if (SA->name() != SB->name() || SA->arity() != SB->arity())
      return false;
    for (unsigned I = 0, E = SA->arity(); I != E; ++I)
      if (!termsEqual(SA->arg(I), SB->arg(I)))
        return false;
    return true;
  }
  }
  assert(false && "unknown term kind");
  return false;
}
