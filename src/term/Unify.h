//===- term/Unify.h - Unification with trailing ---------------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Standard (occurs-check-free) unification over arena terms.  Bindings are
/// recorded on a trail so the interpreter can undo them on backtracking.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_TERM_UNIFY_H
#define GRANLOG_TERM_UNIFY_H

#include "term/Term.h"

#include <unordered_map>
#include <vector>

namespace granlog {

/// Manages variable bindings and their undo trail.  One BindingEnv is
/// shared by a whole interpreter run.
class BindingEnv {
public:
  /// Opaque checkpoint for undoTo().
  using Mark = size_t;

  Mark mark() const { return Trail.size(); }

  /// Binds \p V (which must be unbound) to \p Value, recording the binding
  /// on the trail.
  void bind(const VarTerm *V, const Term *Value) {
    assert(!V->isBound() && "rebinding a bound variable");
    V->Binding = Value;
    Trail.push_back(V);
  }

  /// Undoes all bindings made since \p M.
  void undoTo(Mark M) {
    while (Trail.size() > M) {
      Trail.back()->Binding = nullptr;
      Trail.pop_back();
    }
  }

  size_t trailSize() const { return Trail.size(); }

private:
  std::vector<const VarTerm *> Trail;
};

/// Counters for the unification work performed, feeding the cost metrics of
/// the paper (Section 4: "the number of unifications, or the number of
/// instructions executed").
struct UnifyStats {
  uint64_t Unifications = 0; ///< unify() calls that reached a leaf pair
  uint64_t Bindings = 0;     ///< variable bindings performed
};

/// Unifies \p A and \p B, trailing bindings in \p Env.  On failure the
/// caller is responsible for undoing to its own mark (partial bindings are
/// left on the trail, as in a WAM).  \p Stats may be null.
bool unify(const Term *A, const Term *B, BindingEnv &Env,
           UnifyStats *Stats = nullptr);

/// Copies \p T into \p Arena with every unbound variable consistently
/// replaced by a fresh variable ("renaming apart" for clause activation).
/// Bound variables are chased through their bindings first.
class TermRenamer {
public:
  explicit TermRenamer(TermArena &Arena) : Arena(Arena) {}

  const Term *rename(const Term *T);

private:
  TermArena &Arena;
  std::unordered_map<const VarTerm *, const VarTerm *> Map;
};

/// Fully dereferences \p T, rebuilding any struct that contains bound
/// variables, so the result is stable after the trail is undone.  Ground
/// subterms are shared, not copied.
const Term *resolve(const Term *T, TermArena &Arena);

} // namespace granlog

#endif // GRANLOG_TERM_UNIFY_H
