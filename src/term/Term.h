//===- term/Term.h - Logic program terms ----------------------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The term representation: variables, atoms, integers, floats and compound
/// terms, allocated in a TermArena.  Terms are structurally immutable; the
/// only mutable state is a variable's binding slot, which the unification
/// machinery (Unify.h) manages through a trail so bindings can be undone on
/// backtracking.
///
/// Lists use the conventional encoding: '[]' for nil and './2' for cons.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_TERM_TERM_H
#define GRANLOG_TERM_TERM_H

#include "term/Symbol.h"

#include <cassert>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <vector>

namespace granlog {

/// Discriminator for the Term class hierarchy (hand-rolled RTTI).
enum class TermKind { Variable, Atom, Int, Float, Struct };

/// Base class of all terms.  Instances live in a TermArena and are referred
/// to by plain const pointers; the arena owns them.
class Term {
public:
  TermKind kind() const { return Kind; }

  bool isVariable() const { return Kind == TermKind::Variable; }
  bool isAtom() const { return Kind == TermKind::Atom; }
  bool isInt() const { return Kind == TermKind::Int; }
  bool isFloat() const { return Kind == TermKind::Float; }
  bool isStruct() const { return Kind == TermKind::Struct; }
  bool isNumber() const { return isInt() || isFloat(); }
  bool isAtomic() const { return isAtom() || isNumber(); }

  /// Returns true if no variable occurs in this term (ignoring bindings —
  /// call resolve() first if partially bound terms may be involved).
  bool isGround() const;

protected:
  explicit Term(TermKind Kind) : Kind(Kind) {}
  ~Term() = default;

private:
  TermKind Kind;
};

/// A logic variable.  Name is the source name (may be invalid for variables
/// created fresh at runtime); Id is unique within the arena.  Binding is
/// managed by BindingEnv.
class VarTerm : public Term {
  friend class TermArena;
  friend class BindingEnv;

public:
  Symbol name() const { return Name; }
  unsigned id() const { return Id; }

  /// The term this variable is bound to, or nullptr if unbound.
  const Term *binding() const { return Binding; }
  bool isBound() const { return Binding != nullptr; }

private:
  VarTerm(Symbol Name, unsigned Id)
      : Term(TermKind::Variable), Name(Name), Id(Id) {}

  Symbol Name;
  unsigned Id;
  mutable const Term *Binding = nullptr;
};

/// A constant symbol, e.g. 'foo' or '[]'.
class AtomTerm : public Term {
  friend class TermArena;

public:
  Symbol name() const { return Name; }

private:
  explicit AtomTerm(Symbol Name) : Term(TermKind::Atom), Name(Name) {}
  Symbol Name;
};

/// An integer constant.
class IntTerm : public Term {
  friend class TermArena;

public:
  int64_t value() const { return Value; }

private:
  explicit IntTerm(int64_t Value) : Term(TermKind::Int), Value(Value) {}
  int64_t Value;
};

/// A floating-point constant.
class FloatTerm : public Term {
  friend class TermArena;

public:
  double value() const { return Value; }

private:
  explicit FloatTerm(double Value) : Term(TermKind::Float), Value(Value) {}
  double Value;
};

/// A compound term f(t1, ..., tn), n >= 1.
class StructTerm : public Term {
  friend class TermArena;

public:
  Symbol name() const { return Name; }
  unsigned arity() const { return static_cast<unsigned>(Args.size()); }
  Functor functor() const { return {Name, arity()}; }

  const Term *arg(unsigned I) const {
    assert(I < Args.size() && "argument index out of range");
    return Args[I];
  }
  const std::vector<const Term *> &args() const { return Args; }

private:
  StructTerm(Symbol Name, std::vector<const Term *> Args)
      : Term(TermKind::Struct), Name(Name), Args(std::move(Args)) {}

  Symbol Name;
  std::vector<const Term *> Args;
};

/// Casting helpers in the spirit of llvm::cast/dyn_cast.
template <typename T> const T *dynCast(const Term *TP);

template <> inline const VarTerm *dynCast<VarTerm>(const Term *TP) {
  return TP->isVariable() ? static_cast<const VarTerm *>(TP) : nullptr;
}
template <> inline const AtomTerm *dynCast<AtomTerm>(const Term *TP) {
  return TP->isAtom() ? static_cast<const AtomTerm *>(TP) : nullptr;
}
template <> inline const IntTerm *dynCast<IntTerm>(const Term *TP) {
  return TP->isInt() ? static_cast<const IntTerm *>(TP) : nullptr;
}
template <> inline const FloatTerm *dynCast<FloatTerm>(const Term *TP) {
  return TP->isFloat() ? static_cast<const FloatTerm *>(TP) : nullptr;
}
template <> inline const StructTerm *dynCast<StructTerm>(const Term *TP) {
  return TP->isStruct() ? static_cast<const StructTerm *>(TP) : nullptr;
}

template <typename T> const T *cast(const Term *TP) {
  const T *Result = dynCast<T>(TP);
  assert(Result && "cast to wrong term kind");
  return Result;
}

/// Owns all terms of one program or one interpreter run.  Also owns the
/// SymbolTable so that atoms can be created from bare strings.
class TermArena {
public:
  TermArena() = default;
  TermArena(const TermArena &) = delete;
  TermArena &operator=(const TermArena &) = delete;

  SymbolTable &symbols() { return Symbols; }
  const SymbolTable &symbols() const { return Symbols; }

  /// Creates a fresh, unbound variable.  \p Name may be an invalid Symbol
  /// for machine-generated variables.
  const VarTerm *makeVariable(Symbol Name = Symbol()) {
    Vars.push_back(VarTerm(Name, NextVarId++));
    return &Vars.back();
  }
  const VarTerm *makeVariable(std::string_view Name) {
    return makeVariable(Symbols.intern(Name));
  }

  const AtomTerm *makeAtom(Symbol Name) {
    Atoms.push_back(AtomTerm(Name));
    return &Atoms.back();
  }
  const AtomTerm *makeAtom(std::string_view Name) {
    return makeAtom(Symbols.intern(Name));
  }

  const IntTerm *makeInt(int64_t Value) {
    Ints.push_back(IntTerm(Value));
    return &Ints.back();
  }
  const FloatTerm *makeFloat(double Value) {
    Floats.push_back(FloatTerm(Value));
    return &Floats.back();
  }

  const StructTerm *makeStruct(Symbol Name,
                               std::vector<const Term *> Args) {
    assert(!Args.empty() && "structs have at least one argument");
    Structs.push_back(StructTerm(Name, std::move(Args)));
    return &Structs.back();
  }
  const StructTerm *makeStruct(std::string_view Name,
                               std::vector<const Term *> Args) {
    return makeStruct(Symbols.intern(Name), std::move(Args));
  }

  /// The empty list atom '[]'.
  const AtomTerm *makeNil() { return makeAtom("[]"); }

  /// A cons cell [Head|Tail].
  const StructTerm *makeCons(const Term *Head, const Term *Tail) {
    return makeStruct(".", {Head, Tail});
  }

  /// A proper list of the given elements.
  const Term *makeList(const std::vector<const Term *> &Elements);

  /// A proper list of integers, convenient for tests and workloads.
  const Term *makeIntList(const std::vector<int64_t> &Values);

  size_t numVariables() const { return Vars.size(); }

private:
  SymbolTable Symbols;
  std::deque<VarTerm> Vars;
  std::deque<AtomTerm> Atoms;
  std::deque<IntTerm> Ints;
  std::deque<FloatTerm> Floats;
  std::deque<StructTerm> Structs;
  unsigned NextVarId = 0;
};

/// Follows variable bindings until reaching an unbound variable or a
/// non-variable term.
const Term *deref(const Term *T);

/// True if \p T (after deref) is the atom '[]'.
bool isNil(const Term *T, const SymbolTable &Symbols);

/// True if \p T (after deref) is a './2' cons cell.
bool isCons(const Term *T, const SymbolTable &Symbols);

/// If \p T is a proper list, appends its (dereferenced) elements to
/// \p Elements and returns true; otherwise returns false.
bool collectListElements(const Term *T, const SymbolTable &Symbols,
                         std::vector<const Term *> &Elements);

/// Appends every distinct unbound variable occurring in \p T (after deref)
/// to \p Vars, in first-occurrence order.
void collectVariables(const Term *T, std::vector<const VarTerm *> &Vars);

/// Structural equality after dereferencing (the '==' builtin).
bool termsEqual(const Term *A, const Term *B);

} // namespace granlog

#endif // GRANLOG_TERM_TERM_H
