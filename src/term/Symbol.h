//===- term/Symbol.h - Interned identifiers -------------------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interned strings (atom and functor names) and functor descriptors
/// (name/arity pairs), shared by the whole front end and all analyses.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_TERM_SYMBOL_H
#define GRANLOG_TERM_SYMBOL_H

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace granlog {

/// An interned string.  Symbols are cheap to copy and compare; the text
/// lives in the SymbolTable that created them.
class Symbol {
public:
  Symbol() : Id(~0u) {}
  explicit Symbol(uint32_t Id) : Id(Id) {}

  bool isValid() const { return Id != ~0u; }
  uint32_t id() const { return Id; }

  bool operator==(const Symbol &S) const { return Id == S.Id; }
  bool operator!=(const Symbol &S) const { return Id != S.Id; }
  bool operator<(const Symbol &S) const { return Id < S.Id; }

private:
  uint32_t Id;
};

/// A predicate or structure descriptor: name plus arity.  "p/2" style.
struct Functor {
  Symbol Name;
  unsigned Arity = 0;

  bool operator==(const Functor &F) const {
    return Name == F.Name && Arity == F.Arity;
  }
  bool operator!=(const Functor &F) const { return !(*this == F); }
  bool operator<(const Functor &F) const {
    if (Name != F.Name)
      return Name < F.Name;
    return Arity < F.Arity;
  }
};

/// Maps strings to Symbols and back.  Not thread-safe; one table per
/// Program (or per test).
class SymbolTable {
public:
  /// Interns \p Text, returning its unique Symbol.
  Symbol intern(std::string_view Text) {
    auto It = Ids.find(std::string(Text));
    if (It != Ids.end())
      return Symbol(It->second);
    uint32_t Id = static_cast<uint32_t>(Texts.size());
    Texts.emplace_back(Text);
    Ids.emplace(Texts.back(), Id);
    return Symbol(Id);
  }

  /// Looks up \p Text without interning; returns an invalid Symbol if the
  /// string has never been seen.
  Symbol lookup(std::string_view Text) const {
    auto It = Ids.find(std::string(Text));
    if (It == Ids.end())
      return Symbol();
    return Symbol(It->second);
  }

  const std::string &text(Symbol S) const {
    assert(S.isValid() && S.id() < Texts.size() && "bad symbol");
    return Texts[S.id()];
  }

  /// Renders "name/arity".
  std::string text(const Functor &F) const {
    return text(F.Name) + "/" + std::to_string(F.Arity);
  }

  size_t size() const { return Texts.size(); }

private:
  std::vector<std::string> Texts;
  std::unordered_map<std::string, uint32_t> Ids;
};

} // namespace granlog

namespace std {
template <> struct hash<granlog::Symbol> {
  size_t operator()(const granlog::Symbol &S) const {
    return hash<uint32_t>()(S.id());
  }
};
template <> struct hash<granlog::Functor> {
  size_t operator()(const granlog::Functor &F) const {
    return hash<uint32_t>()(F.Name.id()) * 131 + F.Arity;
  }
};
} // namespace std

#endif // GRANLOG_TERM_SYMBOL_H
