//===- tools/granlogd.cpp - The analysis server daemon --------------------===//
//
// Runs AnalysisServer on a local socket until SIGTERM/SIGINT, then drains
// gracefully: stops accepting, answers queued requests ShuttingDown, lets
// in-flight requests finish (or degrade once --drain-timeout-ms passes),
// flushes every session's persistent cache, and exits 0 on a clean drain
// or 1 when a session flush failed.
//
// Usage:
//   granlogd --socket=PATH [options]
// Options:
//   --socket=PATH        AF_UNIX socket path (required; a stale file from
//                        a crashed predecessor is replaced)
//   --workers=N          request-execution worker threads (default 4)
//   --jobs=N             per-session SCC-parallel analysis jobs (default 1)
//   --bounds=upper|both  resource bounds every session computes: upper
//                        (default) is the classic pipeline; both adds the
//                        dual lower-bound passes, so reports and explain
//                        responses carry [lo, hi] cost intervals
//   --budget             per-client deterministic counter budget
//                        (BudgetLimits::defaults(); hostile programs
//                        degrade to Infinity instead of hanging a worker)
//   --timeout-ms=N       per-request wall-clock deadline (default off)
//   --max-sessions=N     session LRU cap (default 64)
//   --max-store-entries=N  total fingerprint-store entry cap across
//                        sessions (default off)
//   --cache-root=DIR     per-client persistent solver caches under DIR
//                        (stale atomic-write temps are swept at startup)
//   --drain-timeout-ms=N grace for in-flight requests at shutdown
//                        (default 5000)
//   --fault=SPEC         deterministic fault injection,
//                        "seed=S,rate=R,sites=a|b|c" (see
//                        support/FaultInject.h; "off" disables)
//   --log                structured event log on stderr
//   --stats-on-exit      print the Stats-op JSON document on stdout after
//                        the drain (what the CI load test archives)
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"
#include "support/FaultInject.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace granlog;

namespace {

const char *optValue(const char *Arg, const char *Name) {
  size_t Len = std::strlen(Name);
  if (std::strncmp(Arg, Name, Len) == 0 && Arg[Len] == '=')
    return Arg + Len + 1;
  return nullptr;
}

void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s --socket=PATH [--workers=N] [--jobs=N] "
               "[--bounds=upper|both] "
               "[--budget] [--timeout-ms=N] [--max-sessions=N] "
               "[--max-store-entries=N] [--cache-root=DIR] "
               "[--drain-timeout-ms=N] [--fault=SPEC] [--log] "
               "[--stats-on-exit]\n",
               Prog);
}

} // namespace

int main(int Argc, char **Argv) {
  ServerConfig Config;
  std::string FaultSpec;
  bool StatsOnExit = false;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (const char *V = optValue(Arg, "--socket")) {
      Config.SocketPath = V;
    } else if (const char *V = optValue(Arg, "--workers")) {
      int N = std::atoi(V);
      Config.Workers = N > 0 ? static_cast<unsigned>(N) : 1;
    } else if (const char *V = optValue(Arg, "--jobs")) {
      int N = std::atoi(V);
      Config.Session.Jobs = N > 0 ? static_cast<unsigned>(N) : 1;
    } else if (const char *V = optValue(Arg, "--bounds")) {
      if (std::strcmp(V, "both") == 0) {
        Config.Session.Bounds = BoundsMode::Both;
      } else if (std::strcmp(V, "upper") == 0) {
        Config.Session.Bounds = BoundsMode::Upper;
      } else {
        std::fprintf(stderr, "error: --bounds must be 'upper' or 'both'\n");
        return 1;
      }
    } else if (std::strcmp(Arg, "--budget") == 0) {
      Config.Session.Limits = BudgetLimits::defaults();
    } else if (const char *V = optValue(Arg, "--timeout-ms")) {
      int N = std::atoi(V);
      Config.RequestTimeoutMs = N > 0 ? static_cast<unsigned>(N) : 0;
    } else if (const char *V = optValue(Arg, "--max-sessions")) {
      Config.MaxSessions = static_cast<size_t>(std::atoll(V));
    } else if (const char *V = optValue(Arg, "--max-store-entries")) {
      Config.MaxStoreEntries = static_cast<size_t>(std::atoll(V));
    } else if (const char *V = optValue(Arg, "--cache-root")) {
      Config.CacheRoot = V;
    } else if (const char *V = optValue(Arg, "--drain-timeout-ms")) {
      int N = std::atoi(V);
      Config.DrainTimeoutMs = N > 0 ? static_cast<unsigned>(N) : 0;
    } else if (const char *V = optValue(Arg, "--fault")) {
      FaultSpec = V;
    } else if (std::strcmp(Arg, "--log") == 0) {
      Config.Log = stderr;
    } else if (std::strcmp(Arg, "--stats-on-exit") == 0) {
      StatsOnExit = true;
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", Arg);
      usage(Argv[0]);
      return 2;
    }
  }
  if (Config.SocketPath.empty()) {
    usage(Argv[0]);
    return 2;
  }

  std::unique_ptr<FaultInjector> Injector;
  if (!FaultSpec.empty()) {
    std::string Error;
    Injector = FaultInjector::fromSpec(FaultSpec, &Error);
    if (!Error.empty()) {
      std::fprintf(stderr, "error: bad --fault spec: %s\n", Error.c_str());
      return 2;
    }
    setFaultInjector(Injector.get());
  }

  // Block the shutdown signals before any thread exists so every thread
  // inherits the mask; the main thread then sigwait()s them, keeping the
  // drain entirely out of async-signal context.
  sigset_t Sigs;
  sigemptyset(&Sigs);
  sigaddset(&Sigs, SIGTERM);
  sigaddset(&Sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &Sigs, nullptr);

  AnalysisServer Server(Config);
  std::string Error;
  if (!Server.start(&Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }

  int Sig = 0;
  sigwait(&Sigs, &Sig);
  Server.requestStop();
  int Rc = Server.waitForDrain();
  if (StatsOnExit)
    std::printf("%s\n", Server.statsJson().c_str());
  setFaultInjector(nullptr);
  return Rc;
}
