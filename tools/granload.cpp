//===- tools/granload.cpp - granlogd load-test client ---------------------===//
//
// Replays deterministic edit scripts against a granlogd instance from N
// concurrent synthetic clients and reports request latency percentiles
// plus an error taxonomy.  Each client i runs, over one connection:
//
//   hello load<i>
//   update rev0         rev0 = generated program i of --seed
//   update rev1         rev1 = rev0 + generated program i+1000 appended
//   update rev2         rev2 = rev0 again (exercises fingerprint reuse)
//   explain ""          full provenance of rev2
//   only entry/arity    demand-driven analysis of rev0's entry predicate
//   close
//
// With --verify-direct every Ok response body is compared byte-for-byte
// against a local AnalysisSession replaying the same script under the
// same options — the server must be a transparent remoting of the
// library (the session warm == cold contract makes this exact even when
// the server session was LRU-evicted and re-warmed in between).
//
// Usage:
//   granload --socket=PATH --clients=N [options]
// Options:
//   --clients=N          concurrent synthetic clients (default 8)
//   --seed=S             edit-script corpus seed (default 1)
//   --jobs=N --budget    per-session analysis options; must match the
//                        daemon's for --verify-direct
//   --verify-direct      compare Ok responses against local sessions
//   --expect=a,b         comma-separated acceptable response statuses
//                        (default "ok"); anything else fails the run
//   --fault=SPEC         client-side fault injection (site client.slow:
//                        the chosen clients dribble requests one byte at
//                        a time — the server must reassemble)
//   --out=FILE           write the JSON report to FILE (default stdout)
//   --daemon=BIN         spawn BIN as the daemon on --socket, SIGTERM +
//                        reap it at the end, and include its exit code
//                        in the report; daemon stdout goes to
//                        --daemon-stats=FILE when given
//   --daemon-fault=SPEC  forward a fault spec to the spawned daemon
//   --cache-root=DIR --workers=N --timeout-ms=N --drain-timeout-ms=N
//                        forwarded to the spawned daemon
//   --sigterm-mid-load   SIGTERM the spawned daemon while clients are
//                        still sending; shutting_down / closed become
//                        acceptable outcomes and the daemon must still
//                        drain cleanly (exit 0)
//   --sigterm-after-ms=N delay before the mid-load SIGTERM (default 300)
//   --expect-daemon-exit=a,b  acceptable daemon exit codes (default "0";
//                        an io-fault run that tears a cache flush is
//                        *expected* to exit 1 — the exit code must report
//                        the flush failure honestly)
//
// Exit code: 0 when every response status was acceptable, no --verify-
// direct mismatch, and the spawned daemon (if any) exited 0; 1 otherwise.
//
//===----------------------------------------------------------------------===//

#include "core/AnalysisSession.h"
#include "program/Generator.h"
#include "program/Program.h"
#include "server/Protocol.h"
#include "support/Diagnostics.h"
#include "support/FaultInject.h"
#include "support/Histogram.h"
#include "support/Io.h"
#include "support/Json.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace granlog;

namespace {

const char *optValue(const char *Arg, const char *Name) {
  size_t Len = std::strlen(Name);
  if (std::strncmp(Arg, Name, Len) == 0 && Arg[Len] == '=')
    return Arg + Len + 1;
  return nullptr;
}

struct Options {
  std::string Socket;
  unsigned Clients = 8;
  uint64_t Seed = 1;
  unsigned Jobs = 1;
  bool Budget = false;
  bool VerifyDirect = false;
  std::set<std::string> Expect = {"ok"};
  std::string FaultSpec;
  std::string OutPath;
  std::string DaemonBin;
  std::string DaemonFault;
  std::string DaemonStats;
  std::string CacheRoot;
  unsigned Workers = 4;
  unsigned TimeoutMs = 0;
  unsigned DrainTimeoutMs = 5000;
  bool SigtermMidLoad = false;
  unsigned SigtermAfterMs = 300;
  std::set<int> ExpectDaemonExit = {0};
};

/// Everything one client thread observed, merged into the report.
struct ClientResult {
  LatencyHistogram Latency;
  std::map<std::string, uint64_t> Taxonomy; ///< statusName -> count
  uint64_t Requests = 0;
  uint64_t Compared = 0;
  uint64_t Mismatches = 0;
  bool Unacceptable = false; ///< saw a status outside --expect
};

#if !defined(_WIN32)

bool sendAll(int Fd, std::string_view Data, bool Dribble) {
  size_t Off = 0;
  while (Off < Data.size()) {
    size_t N = Dribble ? 1 : Data.size() - Off;
#if defined(MSG_NOSIGNAL)
    ssize_t W = ::send(Fd, Data.data() + Off, N, MSG_NOSIGNAL);
#else
    ssize_t W = ::send(Fd, Data.data() + Off, N, 0);
#endif
    if (W <= 0) {
      if (W < 0 && errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(W);
  }
  return true;
}

/// Blocks until one complete response frame arrives; nullopt on EOF or a
/// framing error.
std::optional<Response> recvResponse(int Fd, FrameReader &Reader) {
  while (true) {
    if (std::optional<std::string> Payload = Reader.next())
      return decodeResponse(*Payload);
    if (Reader.overflowed())
      return std::nullopt;
    char Buf[65536];
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N == 0)
      return std::nullopt;
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return std::nullopt;
    }
    Reader.append(Buf, static_cast<size_t>(N));
  }
}

int connectTo(const std::string &Path, unsigned RetryMs) {
  sockaddr_un Addr{};
  if (Path.size() >= sizeof(Addr.sun_path))
    return -1;
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  for (unsigned Waited = 0;; Waited += 50) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return -1;
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
        0)
      return Fd;
    ::close(Fd);
    if (Waited >= RetryMs)
      return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

void runClient(const Options &Opt, unsigned Index, ClientResult &Out) {
  GeneratedProgram G0 = generateProgram(Opt.Seed, Index);
  GeneratedProgram G1 = generateProgram(Opt.Seed, Index + 1000);
  const std::string Rev0 = G0.Source;
  const std::string Rev1 = G0.Source + "\n" + G1.Source;
  const std::string OnlySpec =
      G0.EntryPred + "/" + std::to_string(G0.EntryArity);

  // The local replica for --verify-direct: same options, no cache dir
  // (the warm == cold contract makes persistence invisible in outputs).
  std::unique_ptr<AnalysisSession> Direct;
  SessionOptions SO;
  SO.Jobs = Opt.Jobs;
  if (Opt.Budget)
    SO.Limits = BudgetLimits::defaults();
  if (Opt.VerifyDirect)
    Direct = std::make_unique<AnalysisSession>(SO);

  int Fd = connectTo(Opt.Socket, 5000);
  if (Fd < 0) {
    ++Out.Taxonomy["connect_failed"];
    Out.Unacceptable = true;
    return;
  }
  FrameReader Reader;
  bool Dribble = faultPointKeyed("client.slow", Index);

  auto Exchange = [&](const Request &R,
                      const std::string *ExpectBody) -> bool {
    ++Out.Requests;
    auto T0 = std::chrono::steady_clock::now();
    if (!sendAll(Fd, encodeRequest(R), Dribble)) {
      ++Out.Taxonomy["closed"];
      if (!Opt.Expect.count("closed"))
        Out.Unacceptable = true;
      return false;
    }
    std::optional<Response> Resp = recvResponse(Fd, Reader);
    auto T1 = std::chrono::steady_clock::now();
    if (!Resp) {
      ++Out.Taxonomy["closed"];
      if (!Opt.Expect.count("closed"))
        Out.Unacceptable = true;
      return false;
    }
    Out.Latency.addNs(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0)
            .count()));
    const char *Name = statusName(Resp->St);
    ++Out.Taxonomy[Name];
    if (!Opt.Expect.count(Name))
      Out.Unacceptable = true;
    if (Resp->St == Status::Ok && ExpectBody) {
      ++Out.Compared;
      if (Resp->Body != *ExpectBody)
        ++Out.Mismatches;
    }
    return Resp->St == Status::Ok;
  };

  // The direct replica's expected body for one update of \p Source.
  auto DirectUpdate = [&](const std::string &Source) -> const std::string * {
    if (!Direct)
      return nullptr;
    TermArena Arena;
    Diagnostics Diags;
    std::optional<Budget> B;
    if (SO.Limits.any())
      B.emplace(SO.Limits);
    std::optional<Program> P =
        loadProgram(Source, Arena, Diags, B ? &*B : nullptr);
    if (!P)
      return nullptr;
    return &Direct->update(*P).Report;
  };

  Request Hello;
  Hello.Kind = Op::Hello;
  Hello.Id = 1;
  Hello.Name = "load" + std::to_string(Index);
  if (!Exchange(Hello, nullptr))
    goto done;

  {
    uint32_t Id = 2;
    for (const std::string *Rev : {&Rev0, &Rev1, &Rev0}) {
      Request R;
      R.Kind = Op::Update;
      R.Id = Id++;
      R.Source = *Rev;
      if (!Exchange(R, DirectUpdate(*Rev)))
        goto done;
    }
    Request Explain;
    Explain.Kind = Op::Explain;
    Explain.Id = Id++;
    if (!Exchange(Explain,
                  Direct ? &Direct->last().ExplainAll : nullptr))
      goto done;

    Request Only;
    Only.Kind = Op::Only;
    Only.Id = Id++;
    Only.Pred = OnlySpec;
    Only.Source = Rev0;
    if (!Exchange(Only, nullptr))
      goto done;

    Request Close;
    Close.Kind = Op::Close;
    Close.Id = Id++;
    Exchange(Close, nullptr);
  }

done:
  ::close(Fd);
}

pid_t spawnDaemon(const Options &Opt) {
  std::vector<std::string> Args;
  Args.push_back(Opt.DaemonBin);
  Args.push_back("--socket=" + Opt.Socket);
  Args.push_back("--workers=" + std::to_string(Opt.Workers));
  Args.push_back("--jobs=" + std::to_string(Opt.Jobs));
  if (Opt.Budget)
    Args.push_back("--budget");
  if (Opt.TimeoutMs)
    Args.push_back("--timeout-ms=" + std::to_string(Opt.TimeoutMs));
  Args.push_back("--drain-timeout-ms=" +
                 std::to_string(Opt.DrainTimeoutMs));
  if (!Opt.CacheRoot.empty())
    Args.push_back("--cache-root=" + Opt.CacheRoot);
  if (!Opt.DaemonFault.empty())
    Args.push_back("--fault=" + Opt.DaemonFault);
  if (!Opt.DaemonStats.empty())
    Args.push_back("--stats-on-exit");

  pid_t Pid = ::fork();
  if (Pid != 0)
    return Pid;
  if (!Opt.DaemonStats.empty()) {
    std::FILE *F = std::fopen(Opt.DaemonStats.c_str(), "w");
    if (F) {
      ::dup2(fileno(F), STDOUT_FILENO);
      std::fclose(F);
    }
  }
  std::vector<char *> Argv;
  for (std::string &A : Args)
    Argv.push_back(A.data());
  Argv.push_back(nullptr);
  ::execv(Argv[0], Argv.data());
  std::fprintf(stderr, "error: exec %s: %s\n", Opt.DaemonBin.c_str(),
               std::strerror(errno));
  ::_exit(127);
}

#endif // !_WIN32

} // namespace

int main(int Argc, char **Argv) {
#if defined(_WIN32)
  std::fprintf(stderr, "granload requires POSIX sockets\n");
  return 2;
#else
  // A server that vanishes mid-write is data, not a process signal.
  std::signal(SIGPIPE, SIG_IGN);

  Options Opt;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (const char *V = optValue(Arg, "--socket")) {
      Opt.Socket = V;
    } else if (const char *V = optValue(Arg, "--clients")) {
      int N = std::atoi(V);
      Opt.Clients = N > 0 ? static_cast<unsigned>(N) : 1;
    } else if (const char *V = optValue(Arg, "--seed")) {
      Opt.Seed = std::strtoull(V, nullptr, 10);
    } else if (const char *V = optValue(Arg, "--jobs")) {
      int N = std::atoi(V);
      Opt.Jobs = N > 0 ? static_cast<unsigned>(N) : 1;
    } else if (std::strcmp(Arg, "--budget") == 0) {
      Opt.Budget = true;
    } else if (std::strcmp(Arg, "--verify-direct") == 0) {
      Opt.VerifyDirect = true;
    } else if (const char *V = optValue(Arg, "--expect")) {
      Opt.Expect.clear();
      for (std::string_view S(V); !S.empty();) {
        size_t Comma = S.find(',');
        Opt.Expect.insert(std::string(S.substr(0, Comma)));
        S = Comma == std::string_view::npos ? std::string_view()
                                            : S.substr(Comma + 1);
      }
    } else if (const char *V = optValue(Arg, "--fault")) {
      Opt.FaultSpec = V;
    } else if (const char *V = optValue(Arg, "--out")) {
      Opt.OutPath = V;
    } else if (const char *V = optValue(Arg, "--daemon")) {
      Opt.DaemonBin = V;
    } else if (const char *V = optValue(Arg, "--daemon-fault")) {
      Opt.DaemonFault = V;
    } else if (const char *V = optValue(Arg, "--daemon-stats")) {
      Opt.DaemonStats = V;
    } else if (const char *V = optValue(Arg, "--cache-root")) {
      Opt.CacheRoot = V;
    } else if (const char *V = optValue(Arg, "--workers")) {
      int N = std::atoi(V);
      Opt.Workers = N > 0 ? static_cast<unsigned>(N) : 1;
    } else if (const char *V = optValue(Arg, "--timeout-ms")) {
      Opt.TimeoutMs = static_cast<unsigned>(std::atoi(V));
    } else if (const char *V = optValue(Arg, "--drain-timeout-ms")) {
      Opt.DrainTimeoutMs = static_cast<unsigned>(std::atoi(V));
    } else if (std::strcmp(Arg, "--sigterm-mid-load") == 0) {
      Opt.SigtermMidLoad = true;
    } else if (const char *V = optValue(Arg, "--sigterm-after-ms")) {
      Opt.SigtermAfterMs = static_cast<unsigned>(std::atoi(V));
    } else if (const char *V = optValue(Arg, "--expect-daemon-exit")) {
      Opt.ExpectDaemonExit.clear();
      for (std::string_view S(V); !S.empty();) {
        size_t Comma = S.find(',');
        Opt.ExpectDaemonExit.insert(
            std::atoi(std::string(S.substr(0, Comma)).c_str()));
        S = Comma == std::string_view::npos ? std::string_view()
                                            : S.substr(Comma + 1);
      }
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", Arg);
      return 2;
    }
  }
  if (Opt.Socket.empty()) {
    std::fprintf(stderr,
                 "usage: %s --socket=PATH --clients=N [options]\n",
                 Argv[0]);
    return 2;
  }
  if (Opt.SigtermMidLoad) {
    // Mid-load shutdown makes these normal client outcomes (including a
    // client that was still connecting when the listener went away).
    Opt.Expect.insert("shutting_down");
    Opt.Expect.insert("closed");
    Opt.Expect.insert("connect_failed");
  }

  std::unique_ptr<FaultInjector> Injector;
  if (!Opt.FaultSpec.empty()) {
    std::string Error;
    Injector = FaultInjector::fromSpec(Opt.FaultSpec, &Error);
    if (!Error.empty()) {
      std::fprintf(stderr, "error: bad --fault spec: %s\n", Error.c_str());
      return 2;
    }
    setFaultInjector(Injector.get());
  }

  pid_t DaemonPid = -1;
  if (!Opt.DaemonBin.empty()) {
    DaemonPid = spawnDaemon(Opt);
    if (DaemonPid < 0) {
      std::fprintf(stderr, "error: fork failed\n");
      return 2;
    }
    // Wait for the daemon to bind before the load (and the mid-load
    // SIGTERM timer) starts; otherwise --sigterm-after-ms would race the
    // daemon's own startup.
    int Probe = connectTo(Opt.Socket, 10000);
    if (Probe < 0) {
      std::fprintf(stderr, "error: daemon never bound %s\n",
                   Opt.Socket.c_str());
      ::kill(DaemonPid, SIGKILL);
      return 2;
    }
    ::close(Probe);
  }

  std::vector<ClientResult> Results(Opt.Clients);
  std::vector<std::thread> Threads;
  Threads.reserve(Opt.Clients);
  for (unsigned I = 0; I != Opt.Clients; ++I)
    Threads.emplace_back(
        [&Opt, &Results, I] { runClient(Opt, I, Results[I]); });

  if (Opt.SigtermMidLoad && DaemonPid > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(Opt.SigtermAfterMs));
    ::kill(DaemonPid, SIGTERM);
  }
  for (std::thread &T : Threads)
    T.join();

  int DaemonExit = -1;
  if (DaemonPid > 0) {
    if (!Opt.SigtermMidLoad)
      ::kill(DaemonPid, SIGTERM);
    int WaitStatus = 0;
    ::waitpid(DaemonPid, &WaitStatus, 0);
    DaemonExit = WIFEXITED(WaitStatus) ? WEXITSTATUS(WaitStatus) : 128;
  }

  // Merge per-client observations.
  LatencyHistogram Latency;
  std::map<std::string, uint64_t> Taxonomy;
  uint64_t Requests = 0, Compared = 0, Mismatches = 0;
  bool Unacceptable = false;
  for (const ClientResult &R : Results) {
    Latency.merge(R.Latency);
    for (const auto &[Name, N] : R.Taxonomy)
      Taxonomy[Name] += N;
    Requests += R.Requests;
    Compared += R.Compared;
    Mismatches += R.Mismatches;
    Unacceptable = Unacceptable || R.Unacceptable;
  }

  JsonWriter W;
  W.beginObject();
  W.key("clients");
  W.value(Opt.Clients);
  W.key("requests");
  W.value(Requests);
  W.key("latency");
  Latency.writeJson(W);
  W.key("taxonomy");
  W.beginObject();
  for (const auto &[Name, N] : Taxonomy) {
    W.key(Name);
    W.value(N);
  }
  W.endObject();
  W.key("verify");
  W.beginObject();
  W.key("compared");
  W.value(Compared);
  W.key("mismatches");
  W.value(Mismatches);
  W.endObject();
  if (Injector) {
    W.key("client_faults_injected");
    W.value(Injector->totalInjected());
  }
  if (DaemonPid > 0) {
    W.key("daemon_exit");
    W.value(DaemonExit);
  }
  W.key("acceptable");
  W.value(!Unacceptable);
  W.endObject();

  std::string Report = W.take();
  if (Opt.OutPath.empty()) {
    std::printf("%s\n", Report.c_str());
  } else if (!writeFileAtomic(Opt.OutPath, Report + "\n")) {
    std::fprintf(stderr, "error: cannot write %s\n", Opt.OutPath.c_str());
    return 1;
  }

  setFaultInjector(nullptr);
  bool Ok = !Unacceptable && Mismatches == 0 &&
            (DaemonPid < 0 || Opt.ExpectDaemonExit.count(DaemonExit));
  return Ok ? 0 : 1;
#endif
}
